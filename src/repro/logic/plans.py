"""Compiled match plans: one-time query compilation for the matcher.

The interpreted matcher in :mod:`repro.logic.matching` re-derives its
atom ordering and candidate sets from scratch on every call, even though
the patterns it is asked about -- tgd and egd premises, conjunctive
queries, canonical queries of instances -- are fixed for the life of a
chase or a homomorphism search.  This module compiles each distinct
``(pattern, inequalities, pre-bound variables)`` triple **once** into a
:class:`CompiledPattern` and caches it, so repeated evaluation pays only
for execution:

* **Static join order.**  A greedy fail-first order is fixed at compile
  time from static selectivity: atoms with more constants and already
  bound variables first, fewer new variables, smaller arity as the
  tie-break.  The interpreted matcher recomputes candidate counts for
  every remaining atom at every search node; the compiled plan does no
  such bookkeeping.
* **Slot arrays instead of dict substitutions.**  Every variable gets an
  integer slot; execution binds and unbinds list entries instead of
  building dictionaries.
* **Index-probe programs.**  Each step precomputes which (position,
  constant) and (position, slot) pairs can serve as index probes; at run
  time the smallest ``(relation, position, value)`` bucket is chosen,
  with an immediate cut when any probe is empty.
* **Ground-membership fast path.**  A step whose arguments are all
  constants or already-bound variables does not iterate candidates at
  all: it assembles the argument tuple and asks
  :meth:`repro.core.instance.Instance.has_tuple` -- an O(1) hash probe
  against the per-relation full-tuple index.
* **Identity comparisons.**  :class:`repro.core.terms.Const` and
  :class:`repro.core.terms.Null` are interned, so every equality test in
  the inner loop is a pointer comparison (``is``).

Inequalities are scheduled at the earliest step where both sides are
bound (or before the first step, when the initial substitution already
decides them), so they prune the search exactly as eagerly as in the
interpreted matcher.  Inequalities that can never be fully bound are
dropped -- the interpreted semantics treat them as vacuously true.

The compiled executor iterates the instance's **live** index buckets
(no frozenset copies).  Callers must therefore not mutate the instance
while consuming a match generator; every call site in this library
either materializes matches first or abandons the generator before
mutating (see ``docs/performance.md``).

Telemetry: ``plan.compilations`` counts cache misses (actual compiles),
``plan.cache_hits`` counts reuses.  The cache is a bounded LRU so
long-running multi-scenario processes cannot grow it without limit.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from time import perf_counter
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.atoms import Atom, Substitution
from ..core.instance import Instance
from ..core.terms import Term, Value, Variable
from ..obs import attribution as _attribution
from ..obs import counter, register_gauge_provider

Inequality = Tuple[Term, Term]

# Prefetched handles: counters survive ``repro.obs.reset`` (zeroed in
# place), so module-level fetches are safe and keep the hot path to one
# attribute increment.
_COMPILATIONS = counter("plan.compilations")
_CACHE_HITS = counter("plan.cache_hits")

# Snapshot-time gauge: the LRU's occupancy, read lazily so plan_for
# never touches a gauge on the hot path.
register_gauge_provider(
    lambda telemetry: telemetry.gauge("plan.cache_size").set(len(_CACHE))
)

_EMPTY_KEYS: FrozenSet[Variable] = frozenset()

# ----------------------------------------------------------------------
# Enable/disable toggle -- the interpreted matcher stays available as a
# reference oracle (the parity suite diffs the two).
# ----------------------------------------------------------------------

_ENABLED = True


def enabled() -> bool:
    """True when ``match()`` routes through compiled plans."""
    return _ENABLED


class interpreted_only:
    """Context manager forcing the interpreted reference matcher.

    Used by the parity suite to obtain oracle answers, and available as
    an escape hatch when debugging the compiler itself.  Reentrant.
    """

    __slots__ = ("_previous",)

    def __enter__(self) -> None:
        global _ENABLED
        self._previous = _ENABLED
        _ENABLED = False

    def __exit__(self, *exc_info) -> bool:
        global _ENABLED
        _ENABLED = self._previous
        return False


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------

#: Bounded LRU: pattern identity (content) -> CompiledPattern.  512 plans
#: comfortably covers every dependency premise, query, and canonical
#: pattern of a large scenario; eviction only matters for processes that
#: stream unboundedly many distinct patterns.
_CACHE_LIMIT = 512
_CACHE: "OrderedDict[Tuple, CompiledPattern]" = OrderedDict()


def reset_cache() -> None:
    """Drop all cached plans (tests and memory-sensitive callers)."""
    _CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)


def plan_for(
    patterns: Sequence[Atom],
    inequalities: Sequence[Inequality],
    initial_keys,
) -> "CompiledPattern":
    """The compiled plan for this triple, compiling at most once.

    The cache key is content-based: two tuples of equal atoms share a
    plan.  Call sites that hold on to their pattern tuples (tgd/egd
    premises, cached canonical patterns) hit the cache with nothing but
    cached-hash tuple hashing.
    """
    key = (
        patterns if type(patterns) is tuple else tuple(patterns),
        inequalities if type(inequalities) is tuple else tuple(inequalities),
        frozenset(initial_keys) if initial_keys else _EMPTY_KEYS,
    )
    plan = _CACHE.get(key)
    if plan is not None:
        _CACHE_HITS.value += 1
        _CACHE.move_to_end(key)
        return plan
    plan = CompiledPattern(key[0], key[1], key[2])
    _COMPILATIONS.value += 1
    _CACHE[key] = plan
    if len(_CACHE) > _CACHE_LIMIT:
        _CACHE.popitem(last=False)
    return plan


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------

# A step is the tuple
#   (relation_name, const_checks, prior_checks, self_checks, binds,
#    ineq_checks, argprog, probes)
# with
#   const_checks: ((position, value), ...)      fact arg must BE value
#   prior_checks: ((position, slot), ...)       fact arg must BE slots[slot]
#   self_checks:  ((position, position0), ...)  repeated new variable
#   binds:        ((position, slot), ...)       first occurrence: bind slot
#   ineq_checks:  ((akind, aval, bkind, bval), ...)  kind 1 = slot, 0 = value
#   argprog:      None, or a tuple of Value-or-slot-int entries -- when set
#                 the step is fully bound and runs as a has_tuple probe
#   probes:       ((position, kind, value_or_slot), ...) index-probe options


class CompiledPattern:
    """A conjunctive pattern compiled against a fixed pre-bound key set.

    Immutable once built; safe to share across instances and calls.
    """

    __slots__ = (
        "patterns",
        "inequalities",
        "initial_keys",
        "n_slots",
        "prebound",
        "out_pairs",
        "start_checks",
        "steps",
        "_identity",
        "_attr_meta",
    )

    def __init__(
        self,
        patterns: Tuple[Atom, ...],
        inequalities: Tuple[Inequality, ...],
        initial_keys: FrozenSet[Variable],
    ):
        self.patterns = patterns
        self.inequalities = inequalities
        self.initial_keys = initial_keys

        # Slot numbering is deterministic given the key: pre-bound
        # variables first (sorted by name), then first occurrence in the
        # chosen join order.
        slot_of: Dict[Variable, int] = {}
        for variable in sorted(initial_keys, key=lambda v: v.name):
            slot_of[variable] = len(slot_of)
        self.prebound: Tuple[Tuple[Variable, int], ...] = tuple(
            (variable, slot)
            for variable, slot in slot_of.items()
        )

        order = self._join_order(patterns, initial_keys)

        # Step construction walks the order, tracking which variables are
        # bound and at which step each first becomes bound (for
        # inequality scheduling).
        bound_at: Dict[Variable, int] = {v: -1 for v in initial_keys}
        steps: List[Tuple] = []
        out_pairs: List[Tuple[Variable, int]] = []
        for step_index, atom_index in enumerate(order):
            pattern = patterns[atom_index]
            const_checks: List[Tuple[int, Value]] = []
            prior_checks: List[Tuple[int, int]] = []
            self_checks: List[Tuple[int, int]] = []
            binds: List[Tuple[int, int]] = []
            new_here: Dict[Variable, int] = {}
            for position, term in enumerate(pattern.args):
                if isinstance(term, Value):
                    const_checks.append((position, term))
                elif term in new_here:
                    self_checks.append((position, new_here[term]))
                elif term in bound_at:
                    prior_checks.append((position, slot_of[term]))
                else:
                    slot = slot_of.get(term)
                    if slot is None:
                        slot = len(slot_of)
                        slot_of[term] = slot
                    new_here[term] = position
                    binds.append((position, slot))
                    out_pairs.append((term, slot))
            for variable in new_here:
                bound_at[variable] = step_index
            probes = tuple(
                [(position, 0, value) for position, value in const_checks]
                + [(position, 1, slot) for position, slot in prior_checks]
            )
            if binds:
                argprog = None
            else:
                argprog = tuple(
                    term if isinstance(term, Value) else slot_of[term]
                    for term in pattern.args
                )
            steps.append(
                (
                    pattern.relation.name,
                    tuple(const_checks),
                    tuple(prior_checks),
                    tuple(self_checks),
                    tuple(binds),
                    [],  # inequality checks, filled below
                    argprog,
                    probes,
                )
            )

        # Inequality scheduling: earliest step where both sides resolve.
        start_checks: List[Tuple[int, object, int, object]] = []
        for left, right in inequalities:
            encoded: List[Tuple[int, object]] = []
            when = -1
            resolvable = True
            for side in (left, right):
                if isinstance(side, Value):
                    encoded.append((0, side))
                elif isinstance(side, Variable) and side in slot_of:
                    step = bound_at.get(side)
                    if step is None:
                        resolvable = False
                        break
                    encoded.append((1, slot_of[side]))
                    if step > when:
                        when = step
                else:
                    # A side that never becomes a value is never
                    # violated -- matches the interpreted semantics.
                    resolvable = False
                    break
            if not resolvable:
                continue
            check = (encoded[0][0], encoded[0][1], encoded[1][0], encoded[1][1])
            if when < 0:
                start_checks.append(check)
            else:
                steps[when][5].append(check)

        self.start_checks: Tuple[Tuple, ...] = tuple(start_checks)
        self.steps: Tuple[Tuple, ...] = tuple(
            (rel, cc, pc, sc, bi, tuple(iq), ap, pr)
            for rel, cc, pc, sc, bi, iq, ap, pr in steps
        )
        self.n_slots = len(slot_of)
        self.out_pairs: Tuple[Tuple[Variable, int], ...] = tuple(out_pairs)
        self._identity: Optional[str] = None
        self._attr_meta: Optional[List[dict]] = None

    # ------------------------------------------------------------------
    # Attribution identity and static step metadata
    # ------------------------------------------------------------------

    @property
    def identity(self) -> str:
        """A stable content digest of the plan-cache key (16 hex chars).

        Two processes compiling the same (patterns, inequalities,
        pre-bound keys) triple produce the same identity, so worker and
        parent plan stats merge by name.
        """
        found = self._identity
        if found is None:
            payload = "|".join(
                (
                    repr(self.patterns),
                    repr(self.inequalities),
                    repr(sorted(v.name for v in self.initial_keys)),
                )
            )
            found = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
            self._identity = found
        return found

    @property
    def label(self) -> str:
        """Human-readable plan label: the conjunction plus pre-bound vars."""
        text = " & ".join(str(pattern) for pattern in self.patterns)
        keys = sorted(v.name for v in self.initial_keys)
        return f"{text} [prebound {', '.join(keys)}]" if keys else text

    def _step_meta(self) -> List[dict]:
        """Static per-step metadata for the attribution plan record."""
        found = self._attr_meta
        if found is None:
            found = []
            for rel, cc, pc, sc, bi, iq, ap, pr in self.steps:
                found.append(
                    {
                        "relation": rel,
                        "checks": len(cc) + len(pc) + len(sc) + len(iq),
                        "binds": len(bi),
                        "ground": ap is not None,
                        "probes": len(pr),
                    }
                )
            self._attr_meta = found
        return found

    def _attr_record(self) -> dict:
        """This plan's stats record (re-fetched so resets are honored)."""
        return _attribution.plan_record(
            self.identity, self.label, self._step_meta()
        )

    @staticmethod
    def _join_order(
        patterns: Tuple[Atom, ...], initial_keys: FrozenSet[Variable]
    ) -> List[int]:
        """Greedy fail-first order from static selectivity.

        Prefer atoms with many constants/bound variables, then few new
        variables, then small arity; the original index breaks ties so
        compilation is deterministic.
        """
        remaining = list(range(len(patterns)))
        bound = set(initial_keys)
        order: List[int] = []
        while remaining:
            best_index = None
            best_score = None
            for i in remaining:
                pattern = patterns[i]
                n_fixed = 0
                new_vars = set()
                for term in pattern.args:
                    if isinstance(term, Value):
                        n_fixed += 1
                    elif term in bound:
                        n_fixed += 1
                    else:
                        new_vars.add(term)
                score = (-n_fixed, len(new_vars), len(pattern.args), i)
                if best_score is None or score < best_score:
                    best_score = score
                    best_index = i
            remaining.remove(best_index)
            order.append(best_index)
            for term in patterns[best_index].args:
                if isinstance(term, Variable):
                    bound.add(term)
        return order

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def matches(
        self,
        instance: Instance,
        initial_map: Dict[Variable, Value],
        counts: Optional[List[int]] = None,
    ) -> Iterator[Substitution]:
        """Enumerate substitutions; ``counts`` switches on bookkeeping.

        ``initial_map`` must bind exactly ``self.initial_keys`` (the
        plan was compiled for that key set).  When ``counts`` is given
        it accumulates ``[candidates_tried, backtracks]`` in place.
        """
        slots: List[Optional[Value]] = [None] * self.n_slots
        for variable, slot in self.prebound:
            slots[slot] = initial_map[variable]
        for akind, aval, bkind, bval in self.start_checks:
            left = slots[aval] if akind else aval
            right = slots[bval] if bkind else bval
            if left is right:
                return
        if _attribution.enabled():
            record = self._attr_record()
            record["uses"] += 1
            runner = self._run_profiled(
                instance, slots, 0, record["counts"], counts
            )
        elif counts is None:
            runner = self._run(instance, slots, 0)
        else:
            runner = self._run_counted(instance, slots, 0, counts)
        out_pairs = self.out_pairs
        for _ in runner:
            result = dict(initial_map)
            for variable, slot in out_pairs:
                result[variable] = slots[slot]
            substitution = Substitution.__new__(Substitution)
            substitution._mapping = result
            yield substitution

    def _run(
        self, instance: Instance, slots: List, depth: int
    ) -> Iterator[bool]:
        """Plain executor: yields once per complete match (slots are set)."""
        steps = self.steps
        if depth == len(steps):
            yield True
            return
        rel, const_checks, prior_checks, self_checks, binds, ineqs, argprog, probes = steps[depth]

        if argprog is not None:
            # Fully bound: one hash probe, no candidate iteration.  No
            # inequality can first become checkable here (a step without
            # binds resolves nothing new).
            args = tuple(
                slots[entry] if type(entry) is int else entry
                for entry in argprog
            )
            if instance.has_tuple(rel, args):
                yield from self._run(instance, slots, depth + 1)
            return

        bucket = instance.probe_relation(rel)
        best = len(bucket)
        for position, kind, value in probes:
            probe = instance.probe_position(
                rel, position, slots[value] if kind else value
            )
            count = len(probe)
            if count < best:
                if not count:
                    return
                best = count
                bucket = probe

        for fact in bucket:
            fact_args = fact.args
            ok = True
            for position, value in const_checks:
                if fact_args[position] is not value:
                    ok = False
                    break
            if ok:
                for position, slot in prior_checks:
                    if fact_args[position] is not slots[slot]:
                        ok = False
                        break
            if ok:
                for position, earlier in self_checks:
                    if fact_args[position] is not fact_args[earlier]:
                        ok = False
                        break
            if not ok:
                continue
            for position, slot in binds:
                slots[slot] = fact_args[position]
            for akind, aval, bkind, bval in ineqs:
                left = slots[aval] if akind else aval
                right = slots[bval] if bkind else bval
                if left is right:
                    ok = False
                    break
            if ok:
                yield from self._run(instance, slots, depth + 1)
            for _, slot in binds:
                slots[slot] = None

    def _run_counted(
        self, instance: Instance, slots: List, depth: int, counts: List[int]
    ) -> Iterator[bool]:
        """Counting executor: counts[0] += candidates, counts[1] += backtracks.

        Mirrors the interpreted matcher's notion: a candidate is one fact
        (or ground probe) considered; a backtrack is a candidate that
        failed its checks, or the undoing of a non-empty binding.
        """
        steps = self.steps
        if depth == len(steps):
            yield True
            return
        rel, const_checks, prior_checks, self_checks, binds, ineqs, argprog, probes = steps[depth]

        if argprog is not None:
            counts[0] += 1
            args = tuple(
                slots[entry] if type(entry) is int else entry
                for entry in argprog
            )
            if instance.has_tuple(rel, args):
                yield from self._run_counted(instance, slots, depth + 1, counts)
            else:
                counts[1] += 1
            return

        bucket = instance.probe_relation(rel)
        best = len(bucket)
        for position, kind, value in probes:
            probe = instance.probe_position(
                rel, position, slots[value] if kind else value
            )
            count = len(probe)
            if count < best:
                if not count:
                    return
                best = count
                bucket = probe

        for fact in bucket:
            counts[0] += 1
            fact_args = fact.args
            ok = True
            for position, value in const_checks:
                if fact_args[position] is not value:
                    ok = False
                    break
            if ok:
                for position, slot in prior_checks:
                    if fact_args[position] is not slots[slot]:
                        ok = False
                        break
            if ok:
                for position, earlier in self_checks:
                    if fact_args[position] is not fact_args[earlier]:
                        ok = False
                        break
            if not ok:
                counts[1] += 1
                continue
            for position, slot in binds:
                slots[slot] = fact_args[position]
            for akind, aval, bkind, bval in ineqs:
                left = slots[aval] if akind else aval
                right = slots[bval] if bkind else bval
                if left is right:
                    ok = False
                    break
            if ok:
                yield from self._run_counted(instance, slots, depth + 1, counts)
            if binds:
                counts[1] += 1
            for _, slot in binds:
                slots[slot] = None

    def _run_profiled(
        self,
        instance: Instance,
        slots: List,
        depth: int,
        stats: List[List],
        counts: Optional[List[int]] = None,
    ) -> Iterator[bool]:
        """Attributed executor: per-step probes/candidates/emitted/time.

        ``stats[depth]`` is the step's mutable ``[probes, candidates,
        emitted, seconds]`` row in the attribution plan record.  Self-
        time excludes child steps *and* consumer time: the clock pauses
        across the recursive ``yield from`` and resumes when control
        returns to this frame.  ``counts`` keeps the ``attributed``
        scope contract of :meth:`_run_counted` when both are requested.
        """
        steps = self.steps
        if depth == len(steps):
            yield True
            return
        row = stats[depth]
        rel, const_checks, prior_checks, self_checks, binds, ineqs, argprog, probes = steps[depth]

        started = perf_counter()
        if argprog is not None:
            row[0] += 1
            row[1] += 1
            if counts is not None:
                counts[0] += 1
            args = tuple(
                slots[entry] if type(entry) is int else entry
                for entry in argprog
            )
            if instance.has_tuple(rel, args):
                row[2] += 1
                row[3] += perf_counter() - started
                yield from self._run_profiled(
                    instance, slots, depth + 1, stats, counts
                )
            else:
                if counts is not None:
                    counts[1] += 1
                row[3] += perf_counter() - started
            return

        bucket = instance.probe_relation(rel)
        best = len(bucket)
        for position, kind, value in probes:
            row[0] += 1
            probe = instance.probe_position(
                rel, position, slots[value] if kind else value
            )
            count = len(probe)
            if count < best:
                if not count:
                    row[3] += perf_counter() - started
                    return
                best = count
                bucket = probe

        for fact in bucket:
            row[1] += 1
            if counts is not None:
                counts[0] += 1
            fact_args = fact.args
            ok = True
            for position, value in const_checks:
                if fact_args[position] is not value:
                    ok = False
                    break
            if ok:
                for position, slot in prior_checks:
                    if fact_args[position] is not slots[slot]:
                        ok = False
                        break
            if ok:
                for position, earlier in self_checks:
                    if fact_args[position] is not fact_args[earlier]:
                        ok = False
                        break
            if not ok:
                if counts is not None:
                    counts[1] += 1
                continue
            for position, slot in binds:
                slots[slot] = fact_args[position]
            for akind, aval, bkind, bval in ineqs:
                left = slots[aval] if akind else aval
                right = slots[bval] if bkind else bval
                if left is right:
                    ok = False
                    break
            if ok:
                row[2] += 1
                row[3] += perf_counter() - started
                yield from self._run_profiled(
                    instance, slots, depth + 1, stats, counts
                )
                started = perf_counter()
            if counts is not None and binds:
                counts[1] += 1
            for _, slot in binds:
                slots[slot] = None
        row[3] += perf_counter() - started

    def explain(self) -> str:
        """A human-readable rendering of the plan (docs and debugging)."""
        lines = [
            f"plan over {len(self.patterns)} atom(s), "
            f"{self.n_slots} slot(s), prebound={sorted(v.name for v in self.initial_keys)}"
        ]
        for i, step in enumerate(self.steps):
            rel, cc, pc, sc, bi, iq, ap, pr = step
            kind = "probe(has_tuple)" if ap is not None else "scan+index"
            lines.append(
                f"  step {i}: {rel} [{kind}] consts={len(cc)} "
                f"prior={len(pc)} self={len(sc)} binds={len(bi)} ineqs={len(iq)}"
            )
        return "\n".join(lines)
