"""Query classes: conjunctive queries, unions, inequalities, full FO.

Section 7 of the paper classifies query answering complexity by query
class:

* unions of conjunctive queries (UCQs)            -> PTIME (Theorem 7.6),
* UCQs with at most one inequality per disjunct   -> co-NP-hard already for
  one CQ with one inequality (Theorem 7.5),
* arbitrary first-order queries                    -> co-NP / NP membership
  for richly acyclic settings (Proposition 7.4).

The classes here mirror that hierarchy.  :class:`ConjunctiveQuery`
evaluates through the indexed matcher; :class:`FirstOrderQuery` wraps an
arbitrary formula and evaluates by brute force.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.errors import UnsupportedQueryError
from ..core.instance import Instance
from ..core.terms import Value, Variable
from .evaluation import satisfying_assignments
from .formulas import (
    Equality,
    Exists,
    Formula,
    Not,
    RelationalAtom,
    conjunction,
    disjunction,
)
from .matching import Inequality, match

AnswerTuple = Tuple[Value, ...]
AnswerSet = FrozenSet[AnswerTuple]


class Query:
    """Base class: a query has an arity and can be evaluated on an instance."""

    arity: int

    def evaluate(self, instance: Instance) -> AnswerSet:
        """Naive evaluation ``Q(I)``: nulls are treated as plain values."""
        raise NotImplementedError

    def certain_part(self, instance: Instance) -> AnswerSet:
        """``Q(I)↓``: the null-free answers of the naive evaluation.

        For UCQs and any CWA-solution T this equals all four CWA answer
        semantics (Lemma 7.7).
        """
        return frozenset(
            answer
            for answer in self.evaluate(instance)
            if all(value.is_constant for value in answer)
        )

    @property
    def is_boolean(self) -> bool:
        return self.arity == 0

    def holds_in(self, instance: Instance) -> bool:
        """For Boolean queries: True iff the empty tuple is an answer."""
        if not self.is_boolean:
            raise UnsupportedQueryError("holds_in is for Boolean queries only")
        return bool(self.evaluate(instance))


class ConjunctiveQuery(Query):
    """A conjunctive query, optionally with inequalities.

    ``Q(x̄) :- A1, ..., Am, s1 ≠ t1, ..., sk ≠ tk`` where every ``Ai`` is a
    relational atom.  With ``k = 0`` this is a plain CQ; with ``k = 1`` it
    is the class of Theorem 7.5.

    >>> # built more conveniently via repro.logic.parser.parse_query
    """

    def __init__(
        self,
        head: Sequence[Variable],
        body: Sequence[Atom],
        inequalities: Sequence[Inequality] = (),
    ):
        self.head: Tuple[Variable, ...] = tuple(head)
        self.body: Tuple[Atom, ...] = tuple(body)
        self.inequalities: Tuple[Inequality, ...] = tuple(inequalities)
        self.arity = len(self.head)
        body_variables: Set[Variable] = set()
        for item in self.body:
            body_variables |= item.variables
        for variable in self.head:
            if variable not in body_variables:
                raise UnsupportedQueryError(
                    f"head variable {variable} does not occur in the body "
                    "(unsafe query)"
                )
        for left, right in self.inequalities:
            for term in (left, right):
                if isinstance(term, Variable) and term not in body_variables:
                    raise UnsupportedQueryError(
                        f"inequality variable {term} does not occur in the body"
                    )

    @property
    def has_inequalities(self) -> bool:
        return bool(self.inequalities)

    def evaluate(self, instance: Instance) -> AnswerSet:
        answers: Set[AnswerTuple] = set()
        for substitution in match(
            self.body, instance, inequalities=self.inequalities
        ):
            answers.add(substitution.as_tuple(self.head))
        return frozenset(answers)

    def to_formula(self) -> Formula:
        """The FO formula ∃(nondistinguished vars). body ∧ inequalities."""
        parts: List[Formula] = [RelationalAtom(item) for item in self.body]
        parts.extend(
            Not(Equality(left, right)) for left, right in self.inequalities
        )
        body = conjunction(parts)
        bound = sorted(
            (body.free_variables() - frozenset(self.head)),
            key=lambda v: v.name,
        )
        if bound:
            return Exists(tuple(bound), body)
        return body

    def variables(self) -> FrozenSet[Variable]:
        out: Set[Variable] = set(self.head)
        for item in self.body:
            out |= item.variables
        for left, right in self.inequalities:
            for term in (left, right):
                if isinstance(term, Variable):
                    out.add(term)
        return frozenset(out)

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        parts = [repr(item) for item in self.body]
        parts.extend(f"{left} ≠ {right}" for left, right in self.inequalities)
        return f"Q({head}) :- {', '.join(parts)}"


class UnionOfConjunctiveQueries(Query):
    """A finite union of conjunctive queries of the same arity.

    The paper allows one inequality per disjunct in the extended class; the
    :attr:`max_inequalities_per_disjunct` property reports where this query
    sits in Table 1's columns.
    """

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery]):
        disjuncts = tuple(disjuncts)
        if not disjuncts:
            raise UnsupportedQueryError("a UCQ needs at least one disjunct")
        arities = {d.arity for d in disjuncts}
        if len(arities) != 1:
            raise UnsupportedQueryError(
                f"all disjuncts must share one arity, got {sorted(arities)}"
            )
        self.disjuncts: Tuple[ConjunctiveQuery, ...] = disjuncts
        self.arity = disjuncts[0].arity

    @property
    def max_inequalities_per_disjunct(self) -> int:
        return max(len(d.inequalities) for d in self.disjuncts)

    @property
    def is_pure_ucq(self) -> bool:
        """True if no disjunct has inequalities (Table 1, first column)."""
        return self.max_inequalities_per_disjunct == 0

    def evaluate(self, instance: Instance) -> AnswerSet:
        answers: Set[AnswerTuple] = set()
        for disjunct in self.disjuncts:
            answers |= disjunct.evaluate(instance)
        return frozenset(answers)

    def to_formula(self) -> Formula:
        """Disjunction of the disjunct formulas, head variables aligned.

        All disjuncts are rewritten to use the first disjunct's head
        variable names so the disjunction is well-formed.
        """
        canonical_head = self.disjuncts[0].head
        rewritten: List[Formula] = []
        for disjunct in self.disjuncts:
            renaming = dict(zip(disjunct.head, canonical_head))
            rewritten.append(disjunct.to_formula().substitute(renaming))
        return disjunction(rewritten)

    def __repr__(self) -> str:
        return " ∪ ".join(repr(d) for d in self.disjuncts)


class FirstOrderQuery(Query):
    """An arbitrary FO query ``Q(x̄) = φ(x̄)``, evaluated by brute force.

    Used for Section 3's anomaly query and for the FO column of Table 1.
    """

    def __init__(self, head: Sequence[Variable], formula: Formula):
        self.head: Tuple[Variable, ...] = tuple(head)
        self.formula = formula
        self.arity = len(self.head)
        free = formula.free_variables()
        if free != frozenset(self.head):
            raise UnsupportedQueryError(
                f"free variables {sorted(v.name for v in free)} must equal "
                f"the head {[v.name for v in self.head]}"
            )

    def evaluate(self, instance: Instance) -> AnswerSet:
        return frozenset(
            satisfying_assignments(self.formula, instance, self.head)
        )

    def to_formula(self) -> Formula:
        return self.formula

    def __repr__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        return f"Q({head}) := {self.formula!r}"


def boolean(query: Query, instance: Instance) -> bool:
    """Evaluate a Boolean query to a Python bool."""
    return bool(query.evaluate(instance))


def canonical_query(instance: Instance) -> ConjunctiveQuery:
    """The canonical (Boolean) conjunctive query of an instance.

    Nulls become existential variables, constants stay (the paper's
    "canonical fact" φ_T of Section 4).  By Chandra-Merlin, ``I ⊨ φ_T``
    iff there is a homomorphism from T to I.
    """
    renaming = {
        value: Variable(f"x{value.ident}") for value in instance.nulls()
    }
    body = tuple(
        Atom(
            item.relation,
            tuple(renaming.get(arg, arg) for arg in item.args),
        )
        for item in instance.sorted_atoms()
    )
    return ConjunctiveQuery(head=(), body=body)
