"""Backtracking matcher for conjunctions of relational atoms.

One matcher powers the whole library:

* evaluating tgd and egd premises during the chase,
* evaluating conjunctive queries,
* finding homomorphisms (an instance is matched as the canonical query of
  itself, cf. Chandra-Merlin, reference [3] of the paper).

The matcher enumerates all substitutions ``θ`` of the pattern variables by
values of the instance such that every pattern atom ``A`` satisfies
``θ(A) ∈ I`` and every inequality ``s ≠ t`` satisfies ``θ(s) ≠ θ(t)``.

By default ``match()`` routes through the **compiled plans** of
:mod:`repro.logic.plans`: each distinct (pattern, inequalities,
pre-bound variables) triple is compiled once -- static fail-first join
order, slot arrays, index-probe programs, O(1) ground probes -- and the
plan is cached, so the repeated evaluations of a chase pay only for
execution.  The original interpreted matcher below is kept verbatim as
the **reference oracle** (:func:`match_interpreted`, and the fallback
when :func:`repro.logic.plans.enabled` is False): at each step it picks
the *most constrained* remaining atom -- the one with the fewest
candidate instance atoms given the current partial substitution --
using the instance's (relation, position, value) index.  The hypothesis
parity suite asserts the two enumerate identical substitution sets.

When **attributed execution** is on (:func:`repro.obs.attribution
.enabled`, the ``repro explain-plan`` path), the compiled route switches
to a profiled executor that charges per-step probe/candidate/row counts
and self-time to the plan's record in the attribution table -- see
:meth:`repro.logic.plans.CompiledPattern.matches` for the dispatch.  The
interpreted matcher has no profiled variant; it participates only
through the ``attributed`` scope counters below.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.atoms import Atom, Substitution
from ..core.instance import Instance
from ..core.terms import Term, Value, Variable
from ..obs import Counter, counter
from . import plans

Inequality = Tuple[Term, Term]

# Telemetry attribution.  The matcher serves several masters (chase
# premise evaluation, query evaluation, homomorphism search); candidate
# and backtrack counting is *opt-in* per call site: an ``attributed``
# block installs a counter pair (``<scope>.candidates`` /
# ``<scope>.backtracks``) and match() runs its counting search variant.
# Outside any block the matcher runs the plain variant -- ``match()`` is
# the single hottest function in the library and the chase's premise
# evaluation must not pay for bookkeeping nobody asked for.
#
# The registry is a bounded LRU of *handles*: the counters themselves
# live in the repro.obs registry; evicting a handle here only means the
# next use of that scope re-fetches it.  Long-running multi-scenario
# processes (one scope per scenario name, say) therefore cannot grow
# this dict without limit.
_SCOPE_LIMIT = 64
_SCOPE_COUNTERS: "OrderedDict[str, Tuple[Counter, Counter]]" = OrderedDict()

#: The counter pair of the innermost ``attributed`` block, or None.
_ACTIVE_COUNTERS: Optional[Tuple[Counter, Counter]] = None


def _scope_counters(scope: str) -> Tuple[Counter, Counter]:
    pair = _SCOPE_COUNTERS.get(scope)
    if pair is None:
        pair = (counter(scope + ".candidates"), counter(scope + ".backtracks"))
        _SCOPE_COUNTERS[scope] = pair
        if len(_SCOPE_COUNTERS) > _SCOPE_LIMIT:
            _SCOPE_COUNTERS.popitem(last=False)
    else:
        _SCOPE_COUNTERS.move_to_end(scope)
    return pair


class attributed:
    """Count matcher work under ``scope`` within the block.

    A hand-rolled context manager (not ``@contextmanager``) because it
    wraps individual homomorphism searches -- core folding enters it
    once per retract attempt.
    """

    __slots__ = ("_scope", "_previous")

    def __init__(self, scope: str):
        self._scope = scope

    def __enter__(self) -> None:
        global _ACTIVE_COUNTERS
        self._previous = _ACTIVE_COUNTERS
        _ACTIVE_COUNTERS = _scope_counters(self._scope)

    def __exit__(self, *exc_info) -> bool:
        global _ACTIVE_COUNTERS
        _ACTIVE_COUNTERS = self._previous
        return False


def _candidate_count(pattern: Atom, instance: Instance, bound: Dict[Variable, Value]) -> int:
    """Upper bound on the number of instance atoms matching ``pattern``."""
    best = instance.count_of(pattern.relation)
    for position, arg in enumerate(pattern.args):
        if isinstance(arg, Value):
            value = arg
        elif isinstance(arg, Variable) and arg in bound:
            value = bound[arg]
        else:
            continue
        count = instance.count_with(pattern.relation, position, value)
        if count < best:
            best = count
    return best


def _candidates(pattern: Atom, instance: Instance, bound: Dict[Variable, Value]) -> Iterable[Atom]:
    """Instance atoms that could match ``pattern`` under ``bound``."""
    best_key: Optional[Tuple[int, Value]] = None
    best_count = instance.count_of(pattern.relation)
    for position, arg in enumerate(pattern.args):
        if isinstance(arg, Value):
            value = arg
        elif isinstance(arg, Variable) and arg in bound:
            value = bound[arg]
        else:
            continue
        count = instance.count_with(pattern.relation, position, value)
        if count < best_count:
            best_count = count
            best_key = (position, value)
    if best_key is None:
        return instance.atoms_of(pattern.relation)
    return instance.atoms_with(pattern.relation, best_key[0], best_key[1])


def _unify(pattern: Atom, fact: Atom, bound: Dict[Variable, Value]) -> Optional[List[Tuple[Variable, Value]]]:
    """Try to match ``pattern`` against ``fact``; return new bindings or None."""
    new_bindings: List[Tuple[Variable, Value]] = []
    local: Dict[Variable, Value] = {}
    for pattern_arg, fact_arg in zip(pattern.args, fact.args):
        if isinstance(pattern_arg, Value):
            if pattern_arg != fact_arg:
                return None
        else:
            current = bound.get(pattern_arg, local.get(pattern_arg))
            if current is None:
                local[pattern_arg] = fact_arg
                new_bindings.append((pattern_arg, fact_arg))
            elif current != fact_arg:
                return None
    return new_bindings


def _resolve(term: Term, bound: Dict[Variable, Value]) -> Optional[Value]:
    if isinstance(term, Value):
        return term
    return bound.get(term)


def _inequalities_hold(
    inequalities: Sequence[Inequality], bound: Dict[Variable, Value]
) -> bool:
    """True unless some inequality is *violated* by fully bound terms."""
    for left, right in inequalities:
        left_value = _resolve(left, bound)
        right_value = _resolve(right, bound)
        if left_value is not None and right_value is not None:
            if left_value == right_value:
                return False
    return True


def _search(
    remaining: List[Atom],
    instance: Instance,
    bound: Dict[Variable, Value],
    inequalities: Sequence[Inequality],
) -> Iterator[Dict[Variable, Value]]:
    """The plain (uncounted) backtracking search."""
    if not remaining:
        yield dict(bound)
        return
    # Fail-first: most constrained atom next.
    index = min(
        range(len(remaining)),
        key=lambda i: _candidate_count(remaining[i], instance, bound),
    )
    pattern = remaining.pop(index)
    try:
        for fact in _candidates(pattern, instance, bound):
            new_bindings = _unify(pattern, fact, bound)
            if new_bindings is None:
                continue
            for variable, value in new_bindings:
                bound[variable] = value
            if _inequalities_hold(inequalities, bound):
                yield from _search(remaining, instance, bound, inequalities)
            for variable, _ in new_bindings:
                del bound[variable]
    finally:
        remaining.insert(index, pattern)


def _search_counted(
    remaining: List[Atom],
    instance: Instance,
    bound: Dict[Variable, Value],
    inequalities: Sequence[Inequality],
    counts: List[int],
) -> Iterator[Dict[Variable, Value]]:
    """The counting search: ``counts`` accumulates [candidates, backtracks].

    A backtrack is a candidate that failed to unify, or the undoing of a
    non-empty partial binding after its subtree was exhausted.
    """
    if not remaining:
        yield dict(bound)
        return
    index = min(
        range(len(remaining)),
        key=lambda i: _candidate_count(remaining[i], instance, bound),
    )
    pattern = remaining.pop(index)
    tried = 0
    backs = 0
    try:
        for fact in _candidates(pattern, instance, bound):
            tried += 1
            new_bindings = _unify(pattern, fact, bound)
            if new_bindings is None:
                backs += 1
                continue
            for variable, value in new_bindings:
                bound[variable] = value
            if _inequalities_hold(inequalities, bound):
                yield from _search_counted(
                    remaining, instance, bound, inequalities, counts
                )
            if new_bindings:
                backs += 1
            for variable, _ in new_bindings:
                del bound[variable]
    finally:
        remaining.insert(index, pattern)
        counts[0] += tried
        counts[1] += backs


def match(
    patterns: Sequence[Atom],
    instance: Instance,
    *,
    initial: Optional[Substitution] = None,
    inequalities: Sequence[Inequality] = (),
) -> Iterator[Substitution]:
    """Enumerate all substitutions matching ``patterns`` inside ``instance``.

    ``initial`` pre-binds some variables (used when chasing: the premise
    variables are matched, then the conclusion is matched with them fixed).
    ``inequalities`` are checked as soon as both sides become bound, so
    they prune the search rather than filter afterwards.

    Yields complete substitutions covering every variable of ``patterns``
    (plus whatever ``initial`` already bound).
    """
    bound: Dict[Variable, Value] = {}
    if initial is not None:
        for variable, term in initial.items():
            if not isinstance(term, Value):
                raise TypeError(
                    f"initial substitution must map to values, got {term!r}"
                )
            bound[variable] = term

    counters = _ACTIVE_COUNTERS

    if plans.enabled():
        plan = plans.plan_for(patterns, inequalities, bound)
        if counters is None:
            yield from plan.matches(instance, bound)
            return
        counts = [0, 0]
        try:
            yield from plan.matches(instance, bound, counts)
        finally:
            # Flushed exactly once, also when the consumer stops early
            # (generator close) -- first_match and exists_match do.
            if counts[0]:
                candidate_counter, backtrack_counter = counters
                candidate_counter.value += counts[0]
                backtrack_counter.value += counts[1]
        return

    if not _inequalities_hold(inequalities, bound):
        return

    remaining = list(patterns)
    if counters is None:
        for result in _search(remaining, instance, bound, inequalities):
            yield Substitution(result)
        return

    counts = [0, 0]
    try:
        for result in _search_counted(
            remaining, instance, bound, inequalities, counts
        ):
            yield Substitution(result)
    finally:
        if counts[0]:
            candidate_counter, backtrack_counter = counters
            candidate_counter.value += counts[0]
            backtrack_counter.value += counts[1]


def match_interpreted(
    patterns: Sequence[Atom],
    instance: Instance,
    *,
    initial: Optional[Substitution] = None,
    inequalities: Sequence[Inequality] = (),
) -> Iterator[Substitution]:
    """The interpreted reference matcher, bypassing compiled plans.

    Same contract as :func:`match`.  The parity suite diffs the two;
    keep this path semantically frozen.
    """
    bound: Dict[Variable, Value] = {}
    if initial is not None:
        for variable, term in initial.items():
            if not isinstance(term, Value):
                raise TypeError(
                    f"initial substitution must map to values, got {term!r}"
                )
            bound[variable] = term
    if not _inequalities_hold(inequalities, bound):
        return
    for result in _search(list(patterns), instance, bound, inequalities):
        yield Substitution(result)


def exists_match(
    patterns: Sequence[Atom],
    instance: Instance,
    *,
    initial: Optional[Substitution] = None,
    inequalities: Sequence[Inequality] = (),
) -> bool:
    """True if at least one match exists (short-circuits)."""
    for _ in match(
        patterns, instance, initial=initial, inequalities=inequalities
    ):
        return True
    return False


def first_match(
    patterns: Sequence[Atom],
    instance: Instance,
    *,
    initial: Optional[Substitution] = None,
    inequalities: Sequence[Inequality] = (),
) -> Optional[Substitution]:
    """The first match found, or None."""
    for result in match(
        patterns, instance, initial=initial, inequalities=inequalities
    ):
        return result
    return None
