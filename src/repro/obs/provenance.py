"""The derivation provenance ledger (schema ``repro.obs/prov/v1``).

The paper's central notion is *justification*: a CWA-presolution is a
solution in which every fact and every null is justified by a derivation
from the source (Sections 3-4, Examples 2.1/4.4).  This module makes
those justifications first-class observable artifacts.  A
:class:`ProvenanceLedger` records, for every fact produced by any of the
four chase engines (standard, oblivious, semi-naive, α), *how* it came
to be:

* ``source`` -- the fact was an atom of I₀;
* ``tgd`` -- a dependency fired on a trigger binding, with the premise
  facts as parents and the fresh/α witnesses attached;
* ``egd`` -- an egd merge replaced a value throughout the instance,
  rewriting the recorded facts it touched;
* ``retract`` -- core folding dropped the fact via a proper
  endomorphism (so it does *not* survive into the minimal
  CWA-solution), with the folding homomorphism attached;
* ``delete`` -- a source delta removed the fact (or its derivation
  cone) from the instance itself; unlike ``retract`` the fact is gone
  from the *chase state*, not merely from the core, and a later firing
  may legitimately re-derive it (DRed-style re-derivation), which
  re-assigns its producer.

Together the records form a per-run derivation DAG.  :meth:`why` walks
it backwards from a fact to source atoms -- the paper-style
justification chain -- and :meth:`why_not` explains absences (never
derived, merged away, or folded away).

Recording is **opt-in and zero-cost when disabled**, following the same
pattern as the attributed matcher counting in
:mod:`repro.logic.matching`: engines fetch :func:`active_ledger` once
per run and skip all bookkeeping when it is None (the default).  Enable
it with::

    from repro.obs.provenance import recording

    with recording() as ledger:
        outcome = standard_chase(source, dependencies)
    print(ledger.render_why(fact))

Ledgers serialize losslessly through the versioned JSON schema
``repro.obs/prov/v1`` (cells use the typed ``repro.io`` encoding, so
constants named like null literals survive) and are fingerprinted via
:func:`repro.engine.fingerprint.fingerprint_ledger`, making them
content-addressable and cacheable alongside solve results.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.errors import ReproError
from ..core.instance import Instance
from ..core.schema import RelationSymbol
from ..core.terms import Value

SCHEMA = "repro.obs/prov/v1"

#: A trigger binding as recorded: ``((variable name, value), ...)``.
Binding = Tuple[Tuple[str, Value], ...]


class Step:
    """One ledger record; ``kind`` is source/tgd/egd/retract/delete."""

    __slots__ = (
        "index",
        "kind",
        "via",
        "dependency",
        "binding",
        "parents",
        "added",
        "witnesses",
        "merged",
        "rewrites",
        "dropped",
        "mapping",
    )

    def __init__(
        self,
        index: int,
        kind: str,
        *,
        via: str = "",
        dependency: str = "",
        binding: Binding = (),
        parents: Tuple[Atom, ...] = (),
        added: Tuple[Atom, ...] = (),
        witnesses: Binding = (),
        merged: Optional[Tuple[Value, Value]] = None,
        rewrites: Tuple[Tuple[Atom, Atom], ...] = (),
        dropped: Tuple[Atom, ...] = (),
        mapping: Tuple[Tuple[Value, Value], ...] = (),
    ):
        self.index = index
        self.kind = kind
        self.via = via  # engine or algorithm that performed the step
        self.dependency = dependency  # display name of the dep, if any
        self.binding = binding
        self.parents = parents
        self.added = added
        self.witnesses = witnesses  # ((existential var name, value), ...)
        self.merged = merged  # (old value, new value) of an egd merge
        self.rewrites = rewrites  # ((old atom, new atom), ...)
        self.dropped = dropped  # atoms retracted by core folding
        self.mapping = mapping  # folding endomorphism, as value pairs

    def __repr__(self) -> str:
        if self.kind == "source":
            return f"Step({self.index}: source {self.added})"
        if self.kind == "tgd":
            return (
                f"Step({self.index}: {self.dependency or 'tgd'} "
                f"adds {self.added})"
            )
        if self.kind == "egd":
            old, new = self.merged
            return f"Step({self.index}: {self.dependency or 'egd'} {old} ↦ {new})"
        return f"Step({self.index}: {self.kind} {self.dropped})"


class Justification:
    """One node of a justification tree returned by :meth:`why`.

    ``kind`` is ``"source"`` (the fact is a source atom), ``"tgd"`` (the
    fact was added by a firing; ``premises`` justify the parents) or
    ``"egd"`` (the fact is the rewrite of ``premises[0].fact`` under a
    merge).  ``step`` is the producing ledger record.
    """

    __slots__ = ("fact", "kind", "step", "premises")

    def __init__(
        self,
        fact: Atom,
        kind: str,
        step: Step,
        premises: Tuple["Justification", ...] = (),
    ):
        self.fact = fact
        self.kind = kind
        self.step = step
        self.premises = premises

    def chain(self) -> List["Justification"]:
        """The tree flattened depth-first (self first)."""
        out: List[Justification] = [self]
        for premise in self.premises:
            out.extend(premise.chain())
        return out

    def __repr__(self) -> str:
        return f"Justification({self.fact!r} via {self.kind})"


class ProvenanceLedger:
    """An append-only derivation ledger forming a per-run DAG.

    Facts are keyed by the (immutable, hashable) atoms themselves; a
    fact's *producer* is the first step that put it into the instance.
    """

    def __init__(self):
        self._steps: List[Step] = []
        self._producers: Dict[Atom, int] = {}
        self._retracted: Dict[Atom, int] = {}  # folded away (kind retract)
        self._deleted: Dict[Atom, int] = {}  # removed by delta (kind delete)
        self._live: Set[Atom] = set()
        # The chase instance implied by the steps: like _live but keeps
        # core-folded atoms (folds shrink the core, not the chase).
        self._chase_state: Set[Atom] = set()
        self._merges: int = 0

    def clear(self) -> None:
        """Reset the ledger in place (keeping external references valid).

        The incremental session resets its ledger like this when it
        falls back to a from-scratch re-solve: holders of the ledger
        object (e.g. the CLI's ``--provenance`` writer) keep observing
        the fresh recording.
        """
        self._steps.clear()
        self._producers.clear()
        self._retracted.clear()
        self._deleted.clear()
        self._live.clear()
        self._chase_state.clear()
        self._merges = 0

    # -- recording (called by the engines) ------------------------------

    def _append(self, step: Step) -> Step:
        self._steps.append(step)
        return step

    def _produce(self, item: Atom, index: int) -> None:
        """Register ``item`` as produced by step ``index``.

        A fact's producer is the first step that put it into the
        instance -- unless the fact was *deleted* in between, in which
        case the re-derivation becomes the new producer (``why`` must
        explain the justification that currently holds, not the one the
        delta destroyed).
        """
        if item in self._deleted:
            del self._deleted[item]
            self._producers[item] = index
        else:
            self._producers.setdefault(item, index)
        self._live.add(item)
        self._chase_state.add(item)

    def record_source(self, atoms: Iterable[Atom]) -> None:
        """Register the atoms of I₀.  Idempotent per atom.

        Atoms previously removed by a ``delete`` step are treated as
        fresh again: re-inserting a deleted source atom yields a new
        source record (its old derivation no longer exists).
        """
        fresh = tuple(
            item
            for item in sorted(atoms)
            if item not in self._producers or item in self._deleted
        )
        if not fresh:
            return
        step = self._append(
            Step(len(self._steps), "source", added=fresh)
        )
        for item in fresh:
            self._produce(item, step.index)

    def record_firing(
        self,
        via: str,
        tgd,
        premise_match,
        added: Sequence[Atom],
        witnesses: Sequence[Value],
    ) -> None:
        """One tgd firing: trigger binding, parent facts, produced facts.

        ``premise_match`` is the engine's substitution; the binding and
        the parent facts (premise atoms under the binding) are derived
        here so the engines stay one-call-per-firing.  FO premises
        (some s-t tgds) have no atom list; their parents are empty.
        """
        binding = tuple(
            (variable.name, premise_match[variable])
            for variable in tuple(tgd.frontier) + tuple(tgd.premise_only)
        )
        if tgd.premise_atoms is not None:
            parents = tuple(
                premise_match.apply(item) for item in tgd.premise_atoms
            )
        else:
            parents = ()
        witness_pairs = tuple(
            (variable.name, value)
            for variable, value in zip(tgd.existential, witnesses)
        )
        step = self._append(
            Step(
                len(self._steps),
                "tgd",
                via=via,
                dependency=tgd.name or "",
                binding=binding,
                parents=parents,
                added=tuple(added),
                witnesses=witness_pairs,
            )
        )
        for item in step.added:
            self._produce(item, step.index)

    def record_merge(self, via: str, egd, old: Value, new: Value) -> None:
        """One egd merge ``old ↦ new``; rewrites every chase fact using old.

        The rewrite set is the *chase state*, not just the live facts:
        ``Instance.replace_value`` rewrites core-folded atoms too, and an
        incremental continuation can merge after folds were recorded.
        """
        rewrites = tuple(
            (item, item.rename_values({old: new}))
            for item in sorted(self._chase_state)
            if old in item.args
        )
        step = self._append(
            Step(
                len(self._steps),
                "egd",
                via=via,
                dependency=getattr(egd, "name", "") or "",
                merged=(old, new),
                rewrites=rewrites,
            )
        )
        for before, after in rewrites:
            self._live.discard(before)
            self._chase_state.discard(before)
            self._produce(after, step.index)
        self._merges += 1

    def record_retraction(
        self,
        via: str,
        dropped: Iterable[Atom],
        mapping: Dict[Value, Value],
        *,
        kind: str = "retract",
    ) -> None:
        """A step that removes facts from the result.

        ``kind="retract"`` (the default) is core folding: ``dropped``
        leaves the minimal CWA-solution via the endomorphism
        ``mapping``, but stays part of the chase state.  ``kind=
        "delete"`` is a source-delta removal: ``dropped`` (the deleted
        atoms plus their derivation cone) leaves the chase state itself
        and may later be re-derived.
        """
        if kind not in ("retract", "delete"):
            raise ReproError(f"unknown retraction kind {kind!r}")
        dropped = tuple(sorted(dropped))
        if not dropped:
            return
        step = self._append(
            Step(
                len(self._steps),
                kind,
                via=via,
                dropped=dropped,
                mapping=tuple(
                    sorted(
                        ((k, v) for k, v in mapping.items() if k != v),
                        key=lambda pair: (str(pair[0]), str(pair[1])),
                    )
                ),
            )
        )
        removed = self._retracted if kind == "retract" else self._deleted
        for item in dropped:
            removed.setdefault(item, step.index)
            self._live.discard(item)
            if kind == "delete":
                self._chase_state.discard(item)

    def record_deletion(self, via: str, dropped: Iterable[Atom]) -> None:
        """Convenience wrapper: a delta removed ``dropped`` from I₀'s cone."""
        self.record_retraction(via, dropped, {}, kind="delete")

    # -- queries --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._steps)

    @property
    def steps(self) -> Tuple[Step, ...]:
        return tuple(self._steps)

    def facts(self) -> Tuple[Atom, ...]:
        """Every fact the ledger ever saw, sorted."""
        return tuple(sorted(self._producers))

    def live_facts(self) -> Tuple[Atom, ...]:
        """Facts neither rewritten away by a merge nor retracted."""
        return tuple(sorted(self._live))

    def producer(self, fact: Atom) -> Optional[Step]:
        """The step that first produced ``fact``, or None."""
        index = self._producers.get(fact)
        return self._steps[index] if index is not None else None

    def has_merges(self) -> bool:
        """True when the ledger recorded at least one egd merge.

        Merge steps do not carry the premise facts that triggered them,
        so the incremental path cannot compute exact deletion cones
        through them and falls back to a full re-solve.
        """
        return self._merges > 0

    def chase_facts(self) -> Tuple[Atom, ...]:
        """The current chase state implied by the ledger, sorted.

        Tracks the steps: ``source``/``tgd`` add, ``egd`` rewrites,
        ``delete`` removes -- while ``retract`` (core folding) does not
        touch it, because folded facts leave the *core*, not the chase
        instance.  This is what :meth:`DeltaSession.from_ledger
        <repro.incremental.DeltaSession>` resumes from.
        """
        return tuple(sorted(self._chase_state))

    def downstream_cone(self, roots: Iterable[Atom]) -> Set[Atom]:
        """``roots`` plus every fact derived (transitively) from them.

        The DRed over-deletion set: a fact joins the cone when some
        recorded firing used a cone member as a parent, or an egd merge
        rewrote a cone member into it.  One forward pass suffices --
        every derivation edge points from an earlier step to a later
        one, even across incremental continuation rounds.
        """
        cone: Set[Atom] = set(roots)
        if not cone:
            return cone
        for step in self._steps:
            if step.kind == "tgd":
                if any(parent in cone for parent in step.parents):
                    cone.update(step.added)
            elif step.kind == "egd":
                for before, after in step.rewrites:
                    if before in cone:
                        cone.add(after)
        return cone

    def why(self, fact: Atom) -> Optional[Justification]:
        """The justification tree of ``fact``: its derivation from I₀.

        Returns None when the ledger never saw the fact (use
        :meth:`why_not` for the explanation).  The result is a tree over
        the derivation DAG; shared parents are re-justified per
        occurrence (cycle-free by construction: every producer step is
        strictly earlier than its consumers).
        """
        index = self._producers.get(fact)
        if index is None:
            return None
        return self._justify(fact, index)

    def _justify(self, fact: Atom, index: int) -> Justification:
        step = self._steps[index]
        if step.kind == "source":
            return Justification(fact, "source", step)
        if step.kind == "tgd":
            premises = tuple(
                self._justify_parent(parent, index) for parent in step.parents
            )
            return Justification(fact, "tgd", step, premises)
        # egd rewrite: justify the pre-merge form(s) of this fact.
        origins = tuple(
            before for before, after in step.rewrites if after == fact
        )
        premises = tuple(
            self._justify_parent(origin, index) for origin in origins
        )
        return Justification(fact, "egd", step, premises)

    def _justify_parent(self, parent: Atom, consumer_index: int) -> Justification:
        producer_index = self._producers.get(parent)
        if producer_index is None or producer_index >= consumer_index:
            # A parent the ledger did not track (e.g. recording was
            # enabled mid-run): surface it as an unexplained leaf.
            return Justification(
                parent, "source", Step(-1, "source", added=(parent,))
            )
        return self._justify(parent, producer_index)

    def why_not(self, fact: Atom) -> str:
        """A one-line account of why ``fact`` is not in the final result."""
        delete_index = self._deleted.get(fact)
        if delete_index is not None:
            step = self._steps[delete_index]
            return (
                f"{fact!r} was deleted by delta (via {step.via or 'delta'}): "
                f"the source edit removed it or every derivation of it"
            )
        retract_index = self._retracted.get(fact)
        if retract_index is not None:
            step = self._steps[retract_index]
            folded = ", ".join(f"{old} ↦ {new}" for old, new in step.mapping)
            return (
                f"{fact!r} was retracted by core {step.via}: a proper "
                f"endomorphism ({folded}) maps it into the surviving "
                f"subinstance, so it is unnecessary in the minimal "
                f"CWA-solution"
            )
        producer_index = self._producers.get(fact)
        if producer_index is None:
            return (
                f"{fact!r} was never derived: no source atom, tgd firing, "
                f"or egd rewrite produced it"
            )
        if fact in self._live:
            return f"{fact!r} is present: see why({fact!r})"
        # Produced, not retracted, not live: an egd merge rewrote it.
        for step in self._steps[producer_index:]:
            if step.kind != "egd":
                continue
            for before, after in step.rewrites:
                if before == fact:
                    old, new = step.merged
                    return (
                        f"{fact!r} was rewritten to {after!r} by egd "
                        f"{step.dependency or 'merge'} ({old} ↦ {new})"
                    )
        return f"{fact!r} is no longer live"  # pragma: no cover - defensive

    def render_why(self, fact: Atom) -> str:
        """Paper-style justification chain of ``fact``, as text.

        Each line is one derivation link::

            G(⊥1, ⊥2) ⇐ d3[y ↦ a, x ↦ ⊥1; z ↦ ⊥2]
              F(a, ⊥1) ⇐ d2[x ↦ a, y ↦ b; z1 ↦ ⊥0, z2 ↦ ⊥1]
                N(a, b) ⇐ source

        Falls back to :meth:`why_not` when the fact was never derived.
        """
        justification = self.why(fact)
        if justification is None:
            return self.why_not(fact)
        lines: List[str] = []
        self._render(justification, 0, lines)
        return "\n".join(lines)

    def _render(
        self, justification: Justification, depth: int, lines: List[str]
    ) -> None:
        indent = "  " * depth
        step = justification.step
        if justification.kind == "source":
            lines.append(f"{indent}{justification.fact!r} ⇐ source")
            return
        if justification.kind == "tgd":
            name = step.dependency or "tgd"
            binding = ", ".join(f"{v} ↦ {value}" for v, value in step.binding)
            witnesses = ", ".join(
                f"{v} ↦ {value}" for v, value in step.witnesses
            )
            inside = binding + (f"; {witnesses}" if witnesses else "")
            lines.append(f"{indent}{justification.fact!r} ⇐ {name}[{inside}]")
        else:
            old, new = step.merged
            name = step.dependency or "egd"
            lines.append(
                f"{indent}{justification.fact!r} ⇐ {name} merge[{old} ↦ {new}]"
            )
        for premise in justification.premises:
            self._render(premise, depth + 1, lines)

    # -- serialization (repro.obs/prov/v1) ------------------------------

    def to_payload(self) -> dict:
        """The ledger as a JSON-serializable dict (stable ordering)."""
        return {
            "schema": SCHEMA,
            "steps": [_step_to_json(step) for step in self._steps],
        }

    def dumps(self, indent: Optional[int] = None) -> str:
        """Deterministic JSON rendering of :meth:`to_payload`."""
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)

    @classmethod
    def from_payload(cls, payload: dict) -> "ProvenanceLedger":
        """Rebuild a ledger; the inverse of :meth:`to_payload`."""
        ledger = cls()
        ledger.ingest(payload)
        return ledger

    def ingest(self, payload: dict) -> None:
        """Fill this (empty) ledger from a ``repro.obs/prov/v1`` payload.

        Replays the steps through the same bookkeeping the live
        recording paths use, so producers, live facts, retractions, and
        deletions all round-trip exactly -- including the re-derivation
        semantics of facts deleted and later re-produced.
        """
        if self._steps:
            raise ReproError("cannot ingest into a non-empty ledger")
        if not isinstance(payload, dict):
            raise ReproError(
                f"provenance payload must be an object, got {payload!r}"
            )
        version = payload.get("schema")
        if version != SCHEMA:
            raise ReproError(
                f"unsupported provenance schema {version!r} "
                f"(expected {SCHEMA!r})"
            )
        for index, body in enumerate(payload.get("steps", ())):
            step = _step_from_json(index, body)
            self._steps.append(step)
            if step.kind in ("source", "tgd"):
                for item in step.added:
                    self._produce(item, step.index)
            elif step.kind == "egd":
                for before, after in step.rewrites:
                    self._live.discard(before)
                    self._chase_state.discard(before)
                    self._produce(after, step.index)
                self._merges += 1
            else:
                removed = (
                    self._retracted
                    if step.kind == "retract"
                    else self._deleted
                )
                for item in step.dropped:
                    removed.setdefault(item, step.index)
                    self._live.discard(item)
                    if step.kind == "delete":
                        self._chase_state.discard(item)

    @classmethod
    def loads(cls, text: str) -> "ProvenanceLedger":
        """Inverse of :meth:`dumps`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReproError(f"invalid provenance JSON: {error}") from None
        return cls.from_payload(payload)

    def fingerprint(self) -> str:
        """Content digest of the ledger (stable across processes).

        Delegates to :func:`repro.engine.fingerprint.fingerprint_ledger`
        so provenance artifacts are content-addressable next to solve
        results.  Round-tripping through ``repro.obs/prov/v1`` preserves
        the fingerprint exactly.
        """
        from ..engine.fingerprint import fingerprint_ledger  # lazy: no cycle

        return fingerprint_ledger(self)


# ----------------------------------------------------------------------
# JSON encoding helpers (cells use the typed repro.io codec)
# ----------------------------------------------------------------------


def _atom_to_json(item: Atom) -> dict:
    from ..io import cell_to_json

    return {
        "rel": item.relation.name,
        "args": [cell_to_json(value) for value in item.args],
    }


def _atom_from_json(body) -> Atom:
    from ..io import cell_from_json

    try:
        name = body["rel"]
        args = tuple(cell_from_json(cell) for cell in body["args"])
    except (TypeError, KeyError):
        raise ReproError(f"malformed provenance atom {body!r}") from None
    return Atom(RelationSymbol(name, len(args)), args)


def _value_to_json(value: Value):
    from ..io import cell_to_json

    return cell_to_json(value)


def _value_from_json(cell) -> Value:
    from ..io import cell_from_json

    return cell_from_json(cell)


def _step_to_json(step: Step) -> dict:
    body: Dict[str, object] = {"kind": step.kind}
    if step.via:
        body["via"] = step.via
    if step.dependency:
        body["dep"] = step.dependency
    if step.binding:
        body["binding"] = [
            [name, _value_to_json(value)] for name, value in step.binding
        ]
    if step.parents:
        body["parents"] = [_atom_to_json(item) for item in step.parents]
    if step.added:
        body["added"] = [_atom_to_json(item) for item in step.added]
    if step.witnesses:
        body["witnesses"] = [
            [name, _value_to_json(value)] for name, value in step.witnesses
        ]
    if step.merged is not None:
        body["merged"] = [
            _value_to_json(step.merged[0]),
            _value_to_json(step.merged[1]),
        ]
    if step.rewrites:
        body["rewrites"] = [
            [_atom_to_json(before), _atom_to_json(after)]
            for before, after in step.rewrites
        ]
    if step.dropped:
        body["dropped"] = [_atom_to_json(item) for item in step.dropped]
    if step.mapping:
        body["mapping"] = [
            [_value_to_json(old), _value_to_json(new)]
            for old, new in step.mapping
        ]
    return body


def _step_from_json(index: int, body) -> Step:
    if not isinstance(body, dict) or "kind" not in body:
        raise ReproError(f"malformed provenance step {body!r}")
    kind = body["kind"]
    if kind not in ("source", "tgd", "egd", "retract", "delete"):
        raise ReproError(f"unknown provenance step kind {kind!r}")
    merged = body.get("merged")
    return Step(
        index,
        kind,
        via=body.get("via", ""),
        dependency=body.get("dep", ""),
        binding=tuple(
            (name, _value_from_json(cell))
            for name, cell in body.get("binding", ())
        ),
        parents=tuple(_atom_from_json(it) for it in body.get("parents", ())),
        added=tuple(_atom_from_json(it) for it in body.get("added", ())),
        witnesses=tuple(
            (name, _value_from_json(cell))
            for name, cell in body.get("witnesses", ())
        ),
        merged=(
            (_value_from_json(merged[0]), _value_from_json(merged[1]))
            if merged is not None
            else None
        ),
        rewrites=tuple(
            (_atom_from_json(before), _atom_from_json(after))
            for before, after in body.get("rewrites", ())
        ),
        dropped=tuple(_atom_from_json(it) for it in body.get("dropped", ())),
        mapping=tuple(
            (_value_from_json(old), _value_from_json(new))
            for old, new in body.get("mapping", ())
        ),
    )


# ----------------------------------------------------------------------
# Activation (mirrors the attributed() matcher-counting idiom)
# ----------------------------------------------------------------------

#: The ledger engines record into, or None (the default: recording off).
_ACTIVE: Optional[ProvenanceLedger] = None


def active_ledger() -> Optional[ProvenanceLedger]:
    """The currently installed ledger, or None when recording is off.

    Engines call this once per run and skip every recording site when it
    returns None, so the default configuration pays one global read per
    chase, not per step.
    """
    return _ACTIVE


class recording:
    """Install a ledger for the duration of the block.

    A hand-rolled context manager (not ``@contextmanager``) mirroring
    :class:`repro.logic.matching.attributed`.  Nesting restores the
    previous ledger on exit; the block yields the ledger::

        with recording() as ledger:
            solve(setting, source)
        ledger.render_why(fact)
    """

    __slots__ = ("ledger", "_previous")

    def __init__(self, ledger: Optional[ProvenanceLedger] = None):
        self.ledger = ledger if ledger is not None else ProvenanceLedger()

    def __enter__(self) -> ProvenanceLedger:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self.ledger
        return self.ledger

    def __exit__(self, *exc_info) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False


def ledger_from_source(instance: Instance) -> ProvenanceLedger:
    """A fresh ledger pre-seeded with ``instance`` as I₀ (convenience)."""
    ledger = ProvenanceLedger()
    ledger.record_source(instance)
    return ledger
