"""The telemetry core: spans, counters, gauges, snapshots.

One :class:`Telemetry` registry aggregates everything in memory:

* **spans** -- hierarchical wall-time sections (``with span("solve"):``).
  Nesting builds ``/``-joined paths (``solve/chase.standard``); each path
  aggregates a call count and total seconds via :func:`time.perf_counter`.
* **counters** -- monotonically increasing integers
  (``counter("chase.tgd_firings").inc()``).
* **gauges** -- last-write-wins numbers (``gauge("instance.nulls").set(n)``).

Aggregation always happens (the updates are single dict/attribute
operations, cheap enough for the chase's hot loops); *events* are only
constructed and emitted when a non-null sink is installed, so the default
configuration adds no observable overhead.

``snapshot()`` returns the aggregate state as a plain dict with the
stable schema documented in ``docs/observability.md``; ``to_json()`` is
its JSON rendering.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Union

from .sinks import NULL_SINK, EventSink

SCHEMA = "repro.obs/v1"

Number = Union[int, float]


class Counter:
    """A named monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named last-write-wins number."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class SpanStats:
    """Aggregate for one span path: how often, how long in total."""

    __slots__ = ("path", "count", "seconds")

    def __init__(self, path: str):
        self.path = path
        self.count = 0
        self.seconds = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.seconds += seconds

    def __repr__(self) -> str:
        return f"SpanStats({self.path}: n={self.count}, {self.seconds:.4f}s)"


class Telemetry:
    """One registry of counters, gauges and span aggregates plus a sink."""

    def __init__(self, sink: EventSink = NULL_SINK):
        self._sink = sink
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._spans: Dict[str, SpanStats] = {}
        self._stack: List[str] = []
        self._epoch = time.perf_counter()

    # -- sink management ------------------------------------------------

    @property
    def sink(self) -> EventSink:
        return self._sink

    def install_sink(self, sink: EventSink) -> EventSink:
        """Replace the sink; returns the previous one."""
        previous = self._sink
        self._sink = sink
        return previous

    @property
    def emitting(self) -> bool:
        """True when a non-null sink is listening."""
        return self._sink is not NULL_SINK

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    # -- instruments ----------------------------------------------------

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    @contextmanager
    def span(self, name: str) -> Iterator[SpanStats]:
        """A wall-timed section; nests into a ``/``-joined path.

        Exception-safe: the span is closed (and its time recorded) even
        when the body raises.
        """
        stack = self._stack
        path = stack[-1] + "/" + name if stack else name
        stats = self._spans.get(path)
        if stats is None:
            stats = self._spans[path] = SpanStats(path)
        stack.append(path)
        if self._sink is not NULL_SINK:
            self._sink.emit(
                {
                    "type": "span_start",
                    "name": path,
                    "ts": self._now(),
                    "depth": len(stack),
                }
            )
        started = time.perf_counter()
        try:
            yield stats
        finally:
            elapsed = time.perf_counter() - started
            stats.record(elapsed)
            stack.pop()
            if self._sink is not NULL_SINK:
                self._sink.emit(
                    {
                        "type": "span_end",
                        "name": path,
                        "ts": self._now(),
                        "seconds": elapsed,
                        "depth": len(stack) + 1,
                    }
                )

    def span_stats(self, name: str) -> SpanStats:
        """An aggregate-only span handle nested under the current span.

        For hot loops where the ~µs cost of the :meth:`span` context
        manager matters: fetch the handle once, then call
        ``stats.record(elapsed)`` with manually measured deltas.  No
        events are emitted; the aggregate appears in :meth:`snapshot`
        like any other span.
        """
        stack = self._stack
        path = stack[-1] + "/" + name if stack else name
        stats = self._spans.get(path)
        if stats is None:
            stats = self._spans[path] = SpanStats(path)
        return stats

    def event(self, name: str, **fields) -> None:
        """Emit a one-off structured event (no-op under the null sink)."""
        if self._sink is not NULL_SINK:
            payload = {"type": "event", "name": name, "ts": self._now()}
            payload.update(fields)
            self._sink.emit(payload)

    # -- export ---------------------------------------------------------

    def snapshot(self) -> dict:
        """The aggregate state as a plain dict (stable schema)."""
        return {
            "schema": SCHEMA,
            "counters": {
                name: item.value for name, item in sorted(self._counters.items())
            },
            "gauges": {
                name: item.value for name, item in sorted(self._gauges.items())
            },
            "spans": {
                path: {"count": item.count, "seconds": item.seconds}
                for path, item in sorted(self._spans.items())
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def emit_snapshot(self) -> None:
        """Push the aggregate state through the sink as one event."""
        if self._sink is not NULL_SINK:
            self._sink.emit(
                {"type": "snapshot", "ts": self._now(), "data": self.snapshot()}
            )

    def reset(self) -> None:
        """Zero all aggregates (the sink stays installed).

        Counter/gauge/span objects are zeroed *in place* rather than
        discarded, so handles fetched before a reset keep working --
        instrumented modules may cache them for speed.
        """
        for item in self._counters.values():
            item.value = 0
        for item in self._gauges.values():
            item.value = 0
        for item in self._spans.values():
            item.count = 0
            item.seconds = 0.0
        self._stack.clear()
        self._epoch = time.perf_counter()


#: The process-wide default registry used by the module-level helpers in
#: :mod:`repro.obs`.  Library code always instruments through it.
DEFAULT = Telemetry()
