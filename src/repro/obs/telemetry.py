"""The telemetry core: spans, counters, gauges, snapshots.

One :class:`Telemetry` registry aggregates everything in memory:

* **spans** -- hierarchical wall-time sections (``with span("solve"):``).
  Nesting builds ``/``-joined paths (``solve/chase.standard``); each path
  aggregates a call count and total seconds via :func:`time.perf_counter`.
* **counters** -- monotonically increasing integers
  (``counter("chase.tgd_firings").inc()``).
* **gauges** -- last-write-wins numbers (``gauge("instance.nulls").set(n)``).

Aggregation always happens (the updates are single dict/attribute
operations, cheap enough for the chase's hot loops); *events* are only
constructed and emitted when a non-null sink is installed, so the default
configuration adds no observable overhead.

``snapshot()`` returns the aggregate state as a plain dict with the
stable schema documented in ``docs/observability.md``; ``to_json()`` is
its JSON rendering.
"""

from __future__ import annotations

import json
import sys
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Union

from .metrics import Histogram
from .sinks import NULL_SINK, EventSink

SCHEMA = "repro.obs/v1"

#: Schema tag of the picklable cross-process state blob shipped from
#: worker processes back to the parent (``export_state``/``merge_state``).
STATE_SCHEMA = "repro.obs/state/v1"

Number = Union[int, float]

#: Callables invoked with the registry at every ``snapshot()`` so
#: lazily-derived gauges (peak RSS, plan-cache size) are fresh without
#: the hot paths paying for them.  Modules register their own provider
#: at import time; provider failures never break a snapshot.
_GAUGE_PROVIDERS: List[Callable[["Telemetry"], None]] = []


def register_gauge_provider(provider: Callable[["Telemetry"], None]) -> None:
    """Run ``provider(telemetry)`` before every snapshot (errors ignored)."""
    _GAUGE_PROVIDERS.append(provider)


#: Named auxiliary state sections carried by snapshots and worker-state
#: blobs.  Each section supplies ``export()`` (a picklable JSON-able
#: payload, or a falsy value to omit the section), ``merge(payload)``
#: (fold a worker's payload into this process -- must be associative),
#: and ``reset()``.  This lets modules like ``repro.obs.attribution``
#: travel through ``export_state``/``merge_state`` without the executor
#: harness knowing about them.
_STATE_SECTIONS: Dict[str, dict] = {}


def register_state_section(
    name: str,
    *,
    export: Callable[[], object],
    merge: Callable[[object], None],
    reset: Callable[[], None],
) -> None:
    """Attach a named section to snapshots, state blobs, and resets."""
    _STATE_SECTIONS[name] = {"export": export, "merge": merge, "reset": reset}


def _peak_rss_gauge(telemetry: "Telemetry") -> None:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is bytes on macOS, kilobytes everywhere else.
    if sys.platform != "darwin":
        peak *= 1024
    telemetry.gauge("process.peak_rss_bytes").set(peak)


register_gauge_provider(_peak_rss_gauge)


class Counter:
    """A named monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named last-write-wins number."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class SpanStats:
    """Aggregate for one span path: count, total, min/max, distribution.

    Backed by one :class:`~repro.obs.metrics.Histogram`, so every span
    path carries latency percentiles for free and two processes' stats
    for the same path merge exactly (bucket-wise).  ``count`` /
    ``seconds`` / ``min`` / ``max`` read through to the histogram.
    """

    __slots__ = ("path", "hist")

    def __init__(self, path: str):
        self.path = path
        self.hist = Histogram(path)

    @property
    def count(self) -> int:
        return self.hist.count

    @property
    def seconds(self) -> float:
        return self.hist.sum

    @property
    def min(self) -> float:
        return self.hist.min if self.hist.count else 0.0

    @property
    def max(self) -> float:
        return self.hist.max

    def record(self, seconds: float) -> None:
        self.hist.record(seconds)

    def zero(self) -> None:
        self.hist.zero()

    def merge_dict(self, state: dict) -> None:
        """Fold a serialized histogram (worker export) into this span."""
        self.hist.merge_dict(state)

    def to_dict(self) -> dict:
        """The snapshot entry: additive superset of the v1 count/seconds.

        ``repro.obs/v1`` consumers keep reading ``count``/``seconds``;
        ``min``/``max``, percentiles, and the sparse ``buckets`` map
        (which keeps snapshots mergeable by ``repro stats``) are new.
        """
        state = self.hist.to_dict()
        state["seconds"] = state.pop("sum")
        return state

    def __repr__(self) -> str:
        return f"SpanStats({self.path}: n={self.count}, {self.seconds:.4f}s)"


class Telemetry:
    """One registry of counters, gauges and span aggregates plus a sink."""

    def __init__(self, sink: EventSink = NULL_SINK):
        self._sink = sink
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._spans: Dict[str, SpanStats] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._stack: List[str] = []
        self._epoch = time.perf_counter()
        # Wall-clock twin of the perf_counter epoch: worker processes
        # ship theirs back so the parent can place worker trace events
        # on its own timeline (same machine, so skew is negligible).
        self._epoch_wall = time.time()

    # -- sink management ------------------------------------------------

    @property
    def sink(self) -> EventSink:
        return self._sink

    def install_sink(self, sink: EventSink) -> EventSink:
        """Replace the sink; returns the previous one."""
        previous = self._sink
        self._sink = sink
        return previous

    @property
    def emitting(self) -> bool:
        """True when a non-null sink is listening."""
        return self._sink is not NULL_SINK

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    # -- instruments ----------------------------------------------------

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    def histogram(self, name: str) -> Histogram:
        """A named standalone latency histogram (p50/p95/p99 in snapshots).

        Distinct from the per-span histograms: use this for latencies
        that are not spans -- cache hit/miss lookups, executor queue
        waits -- recorded with ``histogram(name).record(seconds)``.
        """
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name)
        return found

    @contextmanager
    def span(self, name: str) -> Iterator[SpanStats]:
        """A wall-timed section; nests into a ``/``-joined path.

        Exception-safe: the span is closed (and its time recorded) even
        when the body raises.
        """
        stack = self._stack
        path = stack[-1] + "/" + name if stack else name
        stats = self._spans.get(path)
        if stats is None:
            stats = self._spans[path] = SpanStats(path)
        stack.append(path)
        if self._sink is not NULL_SINK:
            self._sink.emit(
                {
                    "type": "span_start",
                    "name": path,
                    "ts": self._now(),
                    "depth": len(stack),
                }
            )
        started = time.perf_counter()
        try:
            yield stats
        finally:
            elapsed = time.perf_counter() - started
            stats.record(elapsed)
            stack.pop()
            if self._sink is not NULL_SINK:
                self._sink.emit(
                    {
                        "type": "span_end",
                        "name": path,
                        "ts": self._now(),
                        "seconds": elapsed,
                        "depth": len(stack) + 1,
                    }
                )

    def span_stats(self, name: str) -> SpanStats:
        """An aggregate-only span handle nested under the current span.

        For hot loops where the ~µs cost of the :meth:`span` context
        manager matters: fetch the handle once, then call
        ``stats.record(elapsed)`` with manually measured deltas.  No
        events are emitted; the aggregate appears in :meth:`snapshot`
        like any other span.
        """
        stack = self._stack
        path = stack[-1] + "/" + name if stack else name
        stats = self._spans.get(path)
        if stats is None:
            stats = self._spans[path] = SpanStats(path)
        return stats

    def event(self, name: str, **fields) -> None:
        """Emit a one-off structured event (no-op under the null sink)."""
        if self._sink is not NULL_SINK:
            payload = {"type": "event", "name": name, "ts": self._now()}
            payload.update(fields)
            self._sink.emit(payload)

    # -- export ---------------------------------------------------------

    def snapshot(self) -> dict:
        """The aggregate state as a plain dict (stable, additive schema).

        ``spans`` entries keep the v1 ``count``/``seconds`` keys and
        additionally carry ``min``/``max``, ``p50``/``p95``/``p99``,
        and the sparse ``buckets`` map; ``histograms`` is a new section
        for the standalone latency histograms.  Gauge providers (peak
        RSS, plan-cache size) run first so derived gauges are fresh.
        """
        for provider in _GAUGE_PROVIDERS:
            try:
                provider(self)
            except Exception:
                pass
        state = {
            "schema": SCHEMA,
            "counters": {
                name: item.value for name, item in sorted(self._counters.items())
            },
            "gauges": {
                name: item.value for name, item in sorted(self._gauges.items())
            },
            "spans": {
                path: item.to_dict()
                for path, item in sorted(self._spans.items())
            },
            "histograms": {
                name: item.to_dict()
                for name, item in sorted(self._histograms.items())
            },
        }
        # Auxiliary sections are additive: absent when empty, so v1
        # consumers that iterate the four base sections are unaffected.
        for name, section in sorted(_STATE_SECTIONS.items()):
            try:
                payload = section["export"]()
            except Exception:
                continue
            if payload:
                state[name] = payload
        return state

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def emit_snapshot(self) -> None:
        """Push the aggregate state through the sink as one event."""
        if self._sink is not NULL_SINK:
            self._sink.emit(
                {"type": "snapshot", "ts": self._now(), "data": self.snapshot()}
            )

    def reset(self) -> None:
        """Zero all aggregates (the sink stays installed).

        Counter/gauge/span objects are zeroed *in place* rather than
        discarded, so handles fetched before a reset keep working --
        instrumented modules may cache them for speed.
        """
        for item in self._counters.values():
            item.value = 0
        for item in self._gauges.values():
            item.value = 0
        for item in self._spans.values():
            item.zero()
        for item in self._histograms.values():
            item.zero()
        # Resetting the *default* registry also clears the registered
        # auxiliary sections (they are process-wide, like the registry
        # itself); worker harnesses rely on this so inherited parent
        # attribution is never double-counted.
        if self is DEFAULT:
            for section in _STATE_SECTIONS.values():
                try:
                    section["reset"]()
                except Exception:
                    pass
        self._stack.clear()
        self._epoch = time.perf_counter()
        self._epoch_wall = time.time()

    # -- cross-process propagation --------------------------------------

    @property
    def current_path(self) -> Optional[str]:
        """The innermost open span path, or None at top level."""
        return self._stack[-1] if self._stack else None

    def seed(self, path: Optional[str]) -> None:
        """Root subsequent spans under ``path`` (worker harness hook).

        A worker seeded with the parent's :attr:`current_path` produces
        span paths identical to the ones an in-process run would have
        recorded, so merged parallel snapshots line up with serial ones.
        """
        self._stack[:] = [path] if path else []

    def export_state(self) -> dict:
        """The registry as one picklable, mergeable blob.

        Everything :meth:`merge_state` needs to replay this process's
        aggregates into another registry: counters, gauges, spans and
        histograms in serialized-histogram form, plus the wall-clock
        epoch for trace-event time alignment.  Gauge providers are *not*
        run -- worker-derived gauges like peak RSS describe the worker
        process and would clobber the parent's.
        """
        state = {
            "schema": STATE_SCHEMA,
            "epoch_wall": self._epoch_wall,
            "counters": {
                name: item.value
                for name, item in self._counters.items()
                if item.value
            },
            # Zero-valued entries are dropped: a worker blob should only
            # carry what its task actually touched, so merging cannot
            # clobber a parent gauge with a worker's untouched zero.
            "gauges": {
                name: item.value
                for name, item in self._gauges.items()
                if item.value
            },
            # Same zero filter for spans/histograms: an in-place reset
            # keeps inherited registry keys around with count 0, and an
            # empty entry's serialized ``min`` (0.0) must never reach a
            # parent merge as if it were an observation.
            "spans": {
                path: item.hist.to_dict()
                for path, item in self._spans.items()
                if item.count
            },
            "histograms": {
                name: item.to_dict()
                for name, item in self._histograms.items()
                if item.count
            },
        }
        # Same empty filter for auxiliary sections: ship only what this
        # process actually recorded (sections are process-wide, so they
        # travel with the default registry only).
        if self is DEFAULT:
            for name, section in _STATE_SECTIONS.items():
                try:
                    payload = section["export"]()
                except Exception:
                    continue
                if payload:
                    state[name] = payload
        return state

    def merge_state(self, state: dict) -> None:
        """Fold an :meth:`export_state` blob into this registry by name.

        Counters add, gauges are last-write-wins, span stats and
        histograms merge bucket-wise -- the merge is associative, so
        any number of worker blobs folded in any grouping agree.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(value)
        for path, hist_state in state.get("spans", {}).items():
            found = self._spans.get(path)
            if found is None:
                found = self._spans[path] = SpanStats(path)
            found.merge_dict(hist_state)
        for name, hist_state in state.get("histograms", {}).items():
            self.histogram(name).merge_dict(hist_state)
        if self is DEFAULT:
            for name, section in _STATE_SECTIONS.items():
                payload = state.get(name)
                if payload:
                    try:
                        section["merge"](payload)
                    except Exception:
                        pass

    def replay_events(
        self,
        events: List[dict],
        *,
        lane: int,
        epoch_wall: float,
        trace_id: Optional[str] = None,
    ) -> None:
        """Re-emit worker trace events through this registry's sink.

        Timestamps are shifted from the worker's epoch onto this
        registry's, each event is tagged with its worker ``lane`` (the
        trace viewer renders one track per lane) and the propagated
        ``trace`` id.  No-op under the null sink.
        """
        if self._sink is NULL_SINK or not events:
            return
        offset = epoch_wall - self._epoch_wall
        for event in events:
            shifted = dict(event)
            shifted["ts"] = float(shifted.get("ts", 0.0)) + offset
            shifted["lane"] = lane
            if trace_id is not None:
                shifted["trace"] = trace_id
            self._sink.emit(shifted)


#: The process-wide default registry used by the module-level helpers in
#: :mod:`repro.obs`.  Library code always instruments through it.
DEFAULT = Telemetry()
