"""Event sinks for the telemetry substrate.

A sink receives *events* -- plain dicts with a ``"type"`` key (see
``docs/observability.md`` for the schema) -- as they happen.  Four sinks
cover the library's needs:

* :class:`NullSink` -- the default; discards everything.  The hot paths
  are written so that running under the null sink costs (nearly)
  nothing beyond in-memory counter updates.
* :class:`RecordingSink` -- keeps events in a list; used by tests and
  interactive exploration.
* :class:`JsonLinesSink` -- writes one JSON object per line to a file;
  backs the CLI's ``--trace-json`` flag.
* :class:`LoggingSink` -- routes events to a stdlib :mod:`logging`
  logger; installed automatically when ``REPRO_LOG=debug|info`` is set.
* :class:`TraceViewerSink` -- converts the span/event stream into the
  Chrome trace-event format (loadable in Perfetto / ``chrome://tracing``);
  backs the CLI's ``--trace-viewer`` flag.
"""

from __future__ import annotations

import json
import logging
from typing import IO, List, Optional, Union


class EventSink:
    """Protocol for event consumers.  Subclass and override :meth:`emit`."""

    def emit(self, event: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; emitting afterwards is an error."""


class NullSink(EventSink):
    """Discards every event.  The default sink."""

    def emit(self, event: dict) -> None:
        pass


#: Shared null sink instance; identity-compared by the telemetry core so
#: event construction can be skipped entirely when nobody is listening.
NULL_SINK = NullSink()


class RecordingSink(EventSink):
    """Keeps events in memory (``sink.events``)."""

    def __init__(self) -> None:
        self.events: List[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def of_type(self, kind: str) -> List[dict]:
        """The recorded events of one ``"type"`` (helper for tests)."""
        return [event for event in self.events if event.get("type") == kind]


class JsonLinesSink(EventSink):
    """Writes each event as one JSON line (the ``--trace-json`` format)."""

    def __init__(self, destination: Union[str, IO[str]]):
        if isinstance(destination, str):
            self._handle: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = destination
            self._owns_handle = False

    def emit(self, event: dict) -> None:
        self._handle.write(json.dumps(event, sort_keys=True, default=str))
        self._handle.write("\n")

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


class LoggingSink(EventSink):
    """Routes events to a stdlib logger (one record per event).

    The event dict is rendered as compact JSON in the message so log
    aggregators can parse it back out.
    """

    def __init__(
        self,
        logger: Optional[logging.Logger] = None,
        level: int = logging.DEBUG,
    ):
        self.logger = logger or logging.getLogger("repro.obs")
        self.level = level

    def emit(self, event: dict) -> None:
        self.logger.log(
            self.level,
            "%s %s",
            event.get("type", "event"),
            json.dumps(event, sort_keys=True, default=str),
        )


class TraceViewerSink(EventSink):
    """Converts the event stream into Chrome trace-event JSON.

    The output (written on :meth:`close`) is a single JSON object
    ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` that loads
    directly in Perfetto (https://ui.perfetto.dev) and
    ``chrome://tracing``:

    * ``span_start`` / ``span_end`` become ``"B"`` / ``"E"`` duration
      events, so nested chase phases render as a flame graph;
    * one-off events become ``"i"`` instant events with their extra
      fields attached as ``args``;
    * the final telemetry snapshot becomes an instant event carrying the
      whole aggregate dict, so counters and gauges travel with the
      timeline;
    * an event's ``lane`` field (worker pid, attached when the executor
      replays worker-side events into the parent) becomes the ``tid``,
      so a multi-process run renders as one track per worker under a
      single timeline, each labeled via ``thread_name`` metadata.

    Events buffer in memory and the file is written *complete* in one
    shot on close -- a failing run closed via try/finally still produces
    a valid, parseable trace (unlike an incrementally written JSON array,
    which would be truncated mid-structure).
    """

    def __init__(self, destination: Union[str, IO[str]], *, pid: int = 1):
        if isinstance(destination, str):
            self._handle: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = destination
            self._owns_handle = False
        self._pid = pid
        self._events: List[dict] = []
        self._lanes: set = set()
        self._closed = False

    #: The ``tid`` used for events recorded in the parent process itself.
    MAIN_LANE = 1

    @staticmethod
    def _micros(seconds: float) -> float:
        return seconds * 1_000_000.0

    def emit(self, event: dict) -> None:
        kind = event.get("type")
        ts = self._micros(float(event.get("ts", 0.0)))
        lane = int(event.get("lane", self.MAIN_LANE))
        self._lanes.add(lane)
        base = {"pid": self._pid, "tid": lane, "ts": ts}
        if kind == "span_start":
            # Chrome names carry the leaf only; the B/E nesting restores
            # the hierarchy the /-joined path encodes.
            name = event.get("name", "")
            self._events.append(
                {**base, "ph": "B", "name": name.rsplit("/", 1)[-1], "cat": "span"}
            )
        elif kind == "span_end":
            name = event.get("name", "")
            self._events.append(
                {**base, "ph": "E", "name": name.rsplit("/", 1)[-1], "cat": "span"}
            )
        elif kind == "snapshot":
            self._events.append(
                {
                    **base,
                    "ph": "i",
                    "s": "g",
                    "name": "telemetry.snapshot",
                    "cat": "snapshot",
                    "args": event.get("data", {}),
                }
            )
        else:
            args = {
                key: value
                for key, value in event.items()
                if key not in ("type", "name", "ts")
            }
            self._events.append(
                {
                    **base,
                    "ph": "i",
                    "s": "t",
                    "name": event.get("name", "event"),
                    "cat": "event",
                    "args": args,
                }
            )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Label each lane so Perfetto shows "main" / "worker-<pid>"
        # tracks instead of bare tids.
        metadata = [
            {
                "ph": "M",
                "pid": self._pid,
                "tid": lane,
                "ts": 0,
                "name": "thread_name",
                "args": {
                    "name": "main"
                    if lane == self.MAIN_LANE
                    else f"worker-{lane}"
                },
            }
            for lane in sorted(self._lanes)
        ]
        json.dump(
            {"traceEvents": metadata + self._events, "displayTimeUnit": "ms"},
            self._handle,
            sort_keys=True,
            default=str,
        )
        self._handle.write("\n")
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


class TeeSink(EventSink):
    """Fans one event stream out to several sinks."""

    def __init__(self, *sinks: EventSink):
        self.sinks = [sink for sink in sinks if not isinstance(sink, NullSink)]

    def emit(self, event: dict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
