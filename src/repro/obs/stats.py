"""Snapshot/metrics-log aggregation behind ``repro stats``.

The operator-facing complement of ``bench-compare``: where the bench
gate diffs benchmark medians, ``repro stats`` reads telemetry that real
runs left behind -- a ``repro.obs/v1`` snapshot file (``obs.to_json``)
or a ``repro.obs/log/v1`` metrics log (``--metrics-log`` /
``REPRO_METRICS``, one ``run`` record per line) -- and renders either

* an **aggregate table** (one file): spans and histograms with count,
  total, min/max and p50/p95/p99, then counters and gauges; a metrics
  log with several runs is folded into one aggregate first (bucket
  merges are exact, so percentiles are true over all runs); or
* a **delta view** (two files): side-by-side counters, span totals and
  tail latencies, with ratios -- the ``before/after`` workflow for
  operators watching a deployment.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..core.errors import ReproError
from .metrics import LOG_SCHEMA, Histogram
from .telemetry import SCHEMA


def _span_histogram(entry: dict, name: str = "") -> Histogram:
    """Rebuild the histogram behind one snapshot span entry.

    Span entries spell the histogram's ``sum`` as ``seconds``; the
    sparse ``buckets`` map carries the distribution.  Entries written
    by pre-histogram consumers (no buckets) still merge: count and
    total survive, percentiles degrade to the min/max envelope.
    """
    state = dict(entry)
    if "sum" not in state:
        state["sum"] = state.get("seconds", 0.0)
    return Histogram.from_dict(state, name)


def merge_snapshots(into: dict, fresh: dict) -> dict:
    """Fold snapshot ``fresh`` into ``into`` (in place; returns it).

    Counters add, gauges are last-write-wins, spans and histograms
    merge bucket-wise through :class:`Histogram` -- the same merge the
    executor applies to worker state, so ``repro stats`` over a
    multi-run log agrees with one registry that saw every run.
    """
    counters = into.setdefault("counters", {})
    for name, value in fresh.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + value
    gauges = into.setdefault("gauges", {})
    gauges.update(fresh.get("gauges", {}))
    spans = into.setdefault("spans", {})
    for path, entry in fresh.get("spans", {}).items():
        if path in spans:
            merged = _span_histogram(spans[path], path)
            merged.merge_dict(
                {**entry, "sum": entry.get("seconds", entry.get("sum", 0.0))}
            )
            state = merged.to_dict()
            state["seconds"] = state.pop("sum")
            spans[path] = state
        else:
            spans[path] = dict(entry)
    histograms = into.setdefault("histograms", {})
    for name, entry in fresh.get("histograms", {}).items():
        if name in histograms:
            merged = Histogram.from_dict(histograms[name], name)
            merged.merge_dict(entry)
            histograms[name] = merged.to_dict()
        else:
            histograms[name] = dict(entry)
    return into


def load_stats_file(path: str) -> Tuple[dict, int]:
    """Load one snapshot or metrics-log file.

    Returns ``(merged snapshot, number of runs folded in)``.  A plain
    ``repro.obs/v1`` snapshot counts as one run; a ``repro.obs/log/v1``
    JSONL file contributes every ``run`` record's snapshot.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ReproError(f"cannot read stats file {path}: {error}") from None
    stripped = text.strip()
    if not stripped:
        raise ReproError(f"{path}: empty stats file")
    # A whole-file parse distinguishes a single snapshot object from a
    # multi-line metrics log (whose concatenated lines are not one JSON
    # document once there is more than one record).
    document: Optional[object] = None
    try:
        document = json.loads(stripped)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, dict) and document.get("schema") == SCHEMA:
        return document, 1
    if isinstance(document, dict) and document.get("schema") == LOG_SCHEMA:
        lines = [stripped]
    else:
        lines = stripped.splitlines()
    merged: dict = {"schema": SCHEMA}
    runs = 0
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ReproError(
                f"{path}:{number}: invalid metrics-log JSON: {error}"
            ) from None
        if not isinstance(record, dict) or record.get("schema") != LOG_SCHEMA:
            raise ReproError(
                f"{path}:{number}: expected a {LOG_SCHEMA!r} record "
                f"(or a whole-file {SCHEMA!r} snapshot)"
            )
        snapshot = record.get("snapshot")
        if record.get("kind") == "run" and isinstance(snapshot, dict):
            merge_snapshots(merged, snapshot)
            runs += 1
    if runs == 0:
        raise ReproError(f"{path}: no run records to aggregate")
    return merged, runs


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

_LATENCY_COLUMNS = ("count", "seconds", "min", "p50", "p95", "p99", "max")


def _latency_rows(entries: Dict[str, dict]) -> List[Tuple[str, dict]]:
    return sorted(entries.items())


def _seconds_of(entry: dict) -> float:
    return entry.get("seconds", entry.get("sum", 0.0))


def _truncate(
    rows: List[Tuple[str, object]], top: Optional[int], key
) -> Tuple[List[Tuple[str, object]], int]:
    """``--top N``: re-sort by cost (descending) and keep the N head.

    Returns ``(kept rows, number dropped)``; ``top=None`` keeps the
    alphabetical order untouched.
    """
    if top is None:
        return rows, 0
    ranked = sorted(rows, key=lambda item: (-key(item[1]), item[0]))
    return ranked[: max(0, top)], max(0, len(ranked) - max(0, top))


def render_stats(
    snapshot: dict,
    *,
    runs: int = 1,
    title: str = "",
    top: Optional[int] = None,
) -> str:
    """The aggregate table: spans, histograms, counters, gauges.

    ``top`` switches each section from alphabetical order to a
    self-time leaderboard (counters and gauges rank by value) truncated
    to the ``top`` most expensive rows, with a per-section footer for
    what was dropped.
    """
    lines: List[str] = []
    header = title or "telemetry stats"
    lines.append(f"=== {header} ({runs} run(s)) ===")
    for section, key in (("spans", "spans"), ("histograms", "histograms")):
        entries = snapshot.get(key, {})
        if not entries:
            continue
        rows, dropped = _truncate(_latency_rows(entries), top, _seconds_of)
        if not rows:
            continue
        width = max(max(len(name) for name, _ in rows), len(section))
        lines.append("")
        lines.append(
            f"{section.ljust(width)}  {'count':>8}  {'total':>10}  "
            f"{'min':>10}  {'p50':>10}  {'p95':>10}  {'p99':>10}  {'max':>10}"
        )
        for name, entry in rows:
            total = _seconds_of(entry)
            lines.append(
                f"{name.ljust(width)}  {entry.get('count', 0):>8}  "
                f"{total:>10.4f}  {entry.get('min', 0.0):>10.6f}  "
                f"{entry.get('p50', 0.0):>10.6f}  "
                f"{entry.get('p95', 0.0):>10.6f}  "
                f"{entry.get('p99', 0.0):>10.6f}  "
                f"{entry.get('max', 0.0):>10.6f}"
            )
        if dropped:
            lines.append(f"... {dropped} more {section} (raise --top)")
    counters = snapshot.get("counters", {})
    if counters:
        rows, dropped = _truncate(
            sorted(counters.items()), top, lambda value: value
        )
        if rows:
            width = max(max(len(name) for name, _ in rows), len("counter"))
            lines.append("")
            lines.append(f"{'counter'.ljust(width)}  {'total':>12}")
            for name, value in rows:
                lines.append(f"{name.ljust(width)}  {value:>12}")
            if dropped:
                lines.append(f"... {dropped} more counters (raise --top)")
    gauges = snapshot.get("gauges", {})
    if gauges:
        rows, dropped = _truncate(
            sorted(gauges.items()), top, lambda value: value
        )
        if rows:
            width = max(max(len(name) for name, _ in rows), len("gauge"))
            lines.append("")
            lines.append(f"{'gauge'.ljust(width)}  {'value':>12}")
            for name, value in rows:
                lines.append(f"{name.ljust(width)}  {value:>12}")
            if dropped:
                lines.append(f"... {dropped} more gauges (raise --top)")
    return "\n".join(lines)


def _ratio(baseline: float, fresh: float) -> str:
    if baseline <= 0:
        return "--" if fresh <= 0 else "new"
    return f"{fresh / baseline:.2f}x"


def render_delta(baseline: dict, fresh: dict) -> str:
    """The two-run delta view: counters, then span/histogram latencies.

    ``baseline`` first, ``fresh`` second (same order as
    ``bench-compare``); ratios are fresh/baseline.
    """
    lines: List[str] = ["=== telemetry delta (fresh vs baseline) ==="]
    names = sorted(
        set(baseline.get("counters", {})) | set(fresh.get("counters", {}))
    )
    if names:
        width = max(max(len(name) for name in names), len("counter"))
        lines.append("")
        lines.append(
            f"{'counter'.ljust(width)}  {'baseline':>12}  {'fresh':>12}  "
            f"{'delta':>12}  {'ratio':>7}"
        )
        for name in names:
            base = baseline.get("counters", {}).get(name, 0)
            new = fresh.get("counters", {}).get(name, 0)
            lines.append(
                f"{name.ljust(width)}  {base:>12}  {new:>12}  "
                f"{new - base:>+12}  {_ratio(base, new):>7}"
            )
    for section in ("spans", "histograms"):
        paths = sorted(
            set(baseline.get(section, {})) | set(fresh.get(section, {}))
        )
        if not paths:
            continue
        width = max(max(len(path) for path in paths), len(section))
        lines.append("")
        lines.append(
            f"{section.ljust(width)}  {'base total':>11}  {'fresh total':>11}"
            f"  {'ratio':>7}  {'base p95':>10}  {'fresh p95':>10}"
        )
        for path in paths:
            base = baseline.get(section, {}).get(path, {})
            new = fresh.get(section, {}).get(path, {})
            base_total = base.get("seconds", base.get("sum", 0.0))
            new_total = new.get("seconds", new.get("sum", 0.0))
            lines.append(
                f"{path.ljust(width)}  {base_total:>11.4f}  "
                f"{new_total:>11.4f}  {_ratio(base_total, new_total):>7}  "
                f"{base.get('p95', 0.0):>10.6f}  {new.get('p95', 0.0):>10.6f}"
            )
    return "\n".join(lines)
