"""Plan-level EXPLAIN ANALYZE state: attribution tables + heartbeat.

Three process-wide tables, all opt-in (``enabled()`` is False by
default and every producer guards on it, so the default configuration
pays nothing):

* **plan stats** -- one record per compiled match plan, keyed by the
  plan cache's content digest (:attr:`repro.logic.plans.CompiledPattern
  .identity`).  Each record carries per-step counters -- probes
  attempted, candidates scanned, bindings emitted, self-seconds -- next
  to the step's *static* metadata (relation, number of fail-first
  checks), so estimated vs. actual row counts can be compared after the
  fact (:func:`step_estimate`, :func:`step_misestimate`).
* **dependency table** -- per-dependency chase attribution: matched
  triggers, firings, egd merges, nulls created and seconds spent, with
  a bounded per-round breakdown (:func:`record_dependency`).
* **component profiles** -- per-shard / per-core-partition cost rows
  (:func:`record_component`), the direct input the ROADMAP's adaptive
  shard scheduler needs.

All three are registered as one auxiliary state section
(``attribution``) on :mod:`repro.obs.telemetry`, so worker processes
ship them back through the existing ``repro.obs/state/v1`` blob and
``repro.obs/v1`` snapshots gain the section additively.  Merges are
pointwise additions (plus a capped concatenation for component rows)
and therefore associative: any grouping of worker blobs agrees.

The **heartbeat** is independent of ``enabled()``: when configured
(``--progress`` / ``REPRO_PROGRESS``) the chase engines emit one JSON
line per round -- round number, instance size, null-creation rate, and
a divergence flag (sustained superlinear null growth, after Calautti
et al.'s termination heuristics).  Disabled, the engines' only cost is
one ``is None`` check per round boundary.
"""

from __future__ import annotations

import json
import os
import sys
import time
from contextlib import contextmanager
from typing import Dict, List, Optional

from .telemetry import DEFAULT, register_gauge_provider, register_state_section

#: Schema tag of the exported attribution section (also the top-level
#: schema of ``repro explain-plan --json`` documents).
ATTRIBUTION_SCHEMA = "repro.obs/attribution/v1"

#: Static fail-first selectivity: each check on a candidate tuple is
#: assumed to keep this fraction.  The same constant the plan compiler's
#: join-order heuristic embodies (more checks == tried earlier).
SELECTIVITY_FACTOR = 0.1

#: A step is flagged as misestimated when estimate and actual disagree
#: by at least this ratio ...
MISESTIMATE_RATIO = 8.0
#: ... and the step scanned at least this many candidates (tiny samples
#: cannot witness a bad estimate).
MISESTIMATE_FLOOR = 64

#: Per-dependency round breakdowns keep at most this many rounds; later
#: rounds fold into the ``"overflow"`` bucket so records stay bounded.
MAX_ROUNDS = 64

#: Component profile lists are capped at this many rows per kind.
MAX_COMPONENTS = 256

_ENABLED = False

_PLANS: Dict[str, dict] = {}
_DEPS: Dict[str, dict] = {}
_COMPONENTS: Dict[str, List[dict]] = {}


def enabled() -> bool:
    """True when attributed execution is on (default: off)."""
    return _ENABLED


def enable(on: bool = True) -> None:
    """Switch attributed execution on or off process-wide."""
    global _ENABLED
    _ENABLED = bool(on)


@contextmanager
def attributing():
    """Enable attributed execution for the ``with`` body (reentrant)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = True
    try:
        yield
    finally:
        _ENABLED = previous


# -- plan stats ---------------------------------------------------------


def plan_record(identity: str, label: str, steps: List[dict]) -> dict:
    """The mutable stats record for one compiled plan (created once).

    ``steps`` is the static per-step metadata -- one dict per plan step
    with at least ``relation`` (name or None for ground fast-path
    steps), ``checks`` (number of fail-first checks), and ``probe`` (a
    short probe description).  The returned record's ``counts`` entry
    holds one ``[probes, candidates, emitted, seconds]`` list per step;
    the profiled executor mutates those lists in place.
    """
    found = _PLANS.get(identity)
    if found is None:
        found = _PLANS[identity] = {
            "label": label,
            "uses": 0,
            "steps": [dict(step) for step in steps],
            "counts": [[0, 0, 0, 0.0] for _ in steps],
        }
    return found


def plans() -> Dict[str, dict]:
    """The plan-stats table (identity digest -> record)."""
    return _PLANS


def step_estimate(step: dict, candidates: int) -> float:
    """Estimated bindings out of a step that scanned ``candidates``."""
    return candidates * (SELECTIVITY_FACTOR ** step.get("checks", 0))


def step_misestimate(step: dict, counts: List) -> Optional[float]:
    """The estimate/actual misestimate ratio, or None when unflagged.

    The ratio is symmetric (``>= 1``): how far off the static fail-first
    estimate was, in whichever direction.  Only steps that scanned at
    least :data:`MISESTIMATE_FLOOR` candidates and are off by at least
    :data:`MISESTIMATE_RATIO` are flagged.
    """
    probes, candidates, emitted = counts[0], counts[1], counts[2]
    del probes
    if candidates < MISESTIMATE_FLOOR:
        return None
    estimate = max(step_estimate(step, candidates), 1.0)
    actual = max(float(emitted), 1.0)
    ratio = estimate / actual if estimate >= actual else actual / estimate
    return ratio if ratio >= MISESTIMATE_RATIO else None


# -- dependency attribution ---------------------------------------------


def dep_label(dependency) -> str:
    """The attribution key for a dependency: its name, else its repr.

    ``DataExchangeSetting.from_strings`` names dependencies ``st1``,
    ``t2``, ...; anonymous dependencies fall back to their (content-
    stable) repr so serial and parallel tables key identically.
    """
    name = getattr(dependency, "name", None)
    return name if name else repr(dependency)


def dep_record(name: str) -> dict:
    found = _DEPS.get(name)
    if found is None:
        found = _DEPS[name] = {
            "triggers": 0,
            "firings": 0,
            "merges": 0,
            "nulls": 0,
            "seconds": 0.0,
            "rounds": {},
        }
    return found


def record_dependency(
    name: str,
    *,
    round_index: Optional[int] = None,
    triggers: int = 0,
    firings: int = 0,
    merges: int = 0,
    nulls: int = 0,
    seconds: float = 0.0,
) -> None:
    """Fold one dependency observation into the attribution table.

    Callers (the chase engines) guard on :func:`enabled` so the default
    path never reaches here.  ``round_index`` adds a per-round
    breakdown, capped at :data:`MAX_ROUNDS` rounds per dependency.
    """
    record = dep_record(name)
    record["triggers"] += triggers
    record["firings"] += firings
    record["merges"] += merges
    record["nulls"] += nulls
    record["seconds"] += seconds
    if round_index is not None:
        rounds = record["rounds"]
        key = str(round_index) if round_index < MAX_ROUNDS else "overflow"
        bucket = rounds.get(key)
        if bucket is None:
            bucket = rounds[key] = {"triggers": 0, "firings": 0, "nulls": 0}
        bucket["triggers"] += triggers
        bucket["firings"] += firings
        bucket["nulls"] += nulls
    DEFAULT.counter("chase.dep_attribution").inc()


def dependencies() -> Dict[str, dict]:
    """The per-dependency attribution table (dependency name -> record)."""
    return _DEPS


# -- component profiles -------------------------------------------------


def record_component(
    kind: str,
    *,
    size: int,
    steps: int = 0,
    nulls: int = 0,
    seconds: float = 0.0,
) -> None:
    """Append one per-component cost row (``chase.shard`` / ``core``)."""
    rows = _COMPONENTS.setdefault(kind, [])
    if len(rows) < MAX_COMPONENTS:
        rows.append(
            {"size": size, "steps": steps, "nulls": nulls, "seconds": seconds}
        )


def components() -> Dict[str, List[dict]]:
    """Per-component cost rows by kind, merged across the worker pool."""
    return _COMPONENTS


# -- export / merge / reset (state-section protocol) --------------------


def export() -> Optional[dict]:
    """The attribution tables as one picklable, mergeable payload."""
    if not (_PLANS or _DEPS or _COMPONENTS):
        return None
    return {
        "schema": ATTRIBUTION_SCHEMA,
        "plans": {
            identity: {
                "label": record["label"],
                "uses": record["uses"],
                "steps": [dict(step) for step in record["steps"]],
                "counts": [list(counts) for counts in record["counts"]],
            }
            for identity, record in _PLANS.items()
        },
        "dependencies": {
            name: {
                "triggers": record["triggers"],
                "firings": record["firings"],
                "merges": record["merges"],
                "nulls": record["nulls"],
                "seconds": record["seconds"],
                "rounds": {
                    key: dict(bucket)
                    for key, bucket in record["rounds"].items()
                },
            }
            for name, record in _DEPS.items()
        },
        "components": {
            kind: [dict(row) for row in rows]
            for kind, rows in _COMPONENTS.items()
        },
    }


def merge(payload: dict) -> None:
    """Fold an exported payload in (pointwise adds; associative)."""
    for identity, incoming in payload.get("plans", {}).items():
        record = _PLANS.get(identity)
        if record is None:
            _PLANS[identity] = {
                "label": incoming["label"],
                "uses": incoming["uses"],
                "steps": [dict(step) for step in incoming["steps"]],
                "counts": [list(counts) for counts in incoming["counts"]],
            }
            continue
        record["uses"] += incoming["uses"]
        for mine, theirs in zip(record["counts"], incoming["counts"]):
            mine[0] += theirs[0]
            mine[1] += theirs[1]
            mine[2] += theirs[2]
            mine[3] += theirs[3]
    for name, incoming in payload.get("dependencies", {}).items():
        record = dep_record(name)
        record["triggers"] += incoming["triggers"]
        record["firings"] += incoming["firings"]
        record["merges"] += incoming["merges"]
        record["nulls"] += incoming["nulls"]
        record["seconds"] += incoming["seconds"]
        rounds = record["rounds"]
        for key, theirs in incoming.get("rounds", {}).items():
            bucket = rounds.get(key)
            if bucket is None:
                rounds[key] = dict(theirs)
            else:
                for field, value in theirs.items():
                    bucket[field] = bucket.get(field, 0) + value
    for kind, rows in payload.get("components", {}).items():
        mine = _COMPONENTS.setdefault(kind, [])
        room = MAX_COMPONENTS - len(mine)
        if room > 0:
            mine.extend(dict(row) for row in rows[:room])


def reset() -> None:
    """Clear all attribution tables (the enabled flag is untouched)."""
    _PLANS.clear()
    _DEPS.clear()
    _COMPONENTS.clear()


register_state_section("attribution", export=export, merge=merge, reset=reset)


def _plan_gauges(telemetry) -> None:
    """Snapshot-time gauges over the merged plan table."""
    if not _PLANS:
        return
    profiled = 0
    misestimates = 0
    for record in _PLANS.values():
        for step, counts in zip(record["steps"], record["counts"]):
            if counts[0]:
                profiled += 1
            if step_misestimate(step, counts) is not None:
                misestimates += 1
    telemetry.gauge("plan.steps_profiled").set(profiled)
    telemetry.gauge("plan.misestimates").set(misestimates)


register_gauge_provider(_plan_gauges)


# -- progress heartbeat -------------------------------------------------

#: A null-creation round-over-round growth ratio at or above this, for
#: :data:`DIVERGENCE_ROUNDS` consecutive rounds, flags divergence.
DIVERGENCE_GROWTH = 1.5
DIVERGENCE_ROUNDS = 3
#: Rounds creating fewer nulls than this never count toward divergence.
DIVERGENCE_FLOOR = 16


class Heartbeat:
    """Single-line JSONL progress emitter for chase round boundaries.

    One line per :meth:`beat` (rate-limited by ``interval`` seconds,
    round 0 always emitted), written with a single ``write`` call so
    concurrent shard workers appending to the same file interleave at
    line granularity.  Tracks per-round null-creation deltas to raise a
    ``diverging`` flag on sustained superlinear growth.
    """

    def __init__(self, stream, *, interval: float = 0.0, close: bool = False):
        self._stream = stream
        self._interval = interval
        self._close = close
        self._started = time.monotonic()
        self._last_emit = float("-inf")
        self._last_round = -1
        self._last_nulls = 0
        self._last_delta = 0
        self._growth_streak = 0

    def beat(
        self,
        *,
        engine: str,
        round_index: int,
        steps: int,
        instance_size: int,
        nulls_created: int,
    ) -> None:
        now = time.monotonic()
        if round_index <= self._last_round:
            # A new chase started in this process: restart tracking.
            self._last_nulls = 0
            self._last_delta = 0
            self._growth_streak = 0
        self._last_round = round_index
        delta = nulls_created - self._last_nulls
        if (
            delta >= DIVERGENCE_FLOOR
            and delta >= self._last_delta * DIVERGENCE_GROWTH
        ):
            self._growth_streak += 1
        else:
            self._growth_streak = 0
        self._last_nulls = nulls_created
        self._last_delta = delta
        diverging = self._growth_streak >= DIVERGENCE_ROUNDS
        if (
            now - self._last_emit < self._interval
            and round_index > 0
            and not diverging
        ):
            return
        self._last_emit = now
        elapsed = now - self._started
        line = {
            "type": "heartbeat",
            "engine": engine,
            "round": round_index,
            "steps": steps,
            "atoms": instance_size,
            "nulls": nulls_created,
            "nulls_delta": delta,
            "nulls_per_s": round(nulls_created / elapsed, 3)
            if elapsed > 0
            else 0.0,
            "elapsed_s": round(elapsed, 3),
            "pid": os.getpid(),
            "diverging": diverging,
        }
        try:
            self._stream.write(json.dumps(line, sort_keys=True) + "\n")
            self._stream.flush()
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        if self._close:
            try:
                self._stream.close()
            except OSError:
                pass


_HEARTBEAT: Optional[Heartbeat] = None


def heartbeat() -> Optional[Heartbeat]:
    return _HEARTBEAT


def beat(
    *,
    engine: str,
    round_index: int,
    steps: int,
    instance_size: int,
    nulls_created: int,
) -> None:
    """Engine-side round-boundary hook; no-op when no heartbeat is set.

    The engines call this once per round; the disabled cost is this
    function call plus one global read.
    """
    hb = _HEARTBEAT
    if hb is not None:
        hb.beat(
            engine=engine,
            round_index=round_index,
            steps=steps,
            instance_size=instance_size,
            nulls_created=nulls_created,
        )


def enable_heartbeat(
    target: str = "stderr", *, interval: float = 0.0
) -> Heartbeat:
    """Install the process heartbeat: ``stderr``, ``stdout``, or a path.

    A path is opened in append mode (shard workers inheriting the
    configuration append to the same file; single-line writes keep the
    stream valid JSONL).  Returns the installed heartbeat.
    """
    global _HEARTBEAT
    disable_heartbeat()
    if target in ("stderr", "1", ""):
        _HEARTBEAT = Heartbeat(sys.stderr, interval=interval)
    elif target in ("stdout", "-"):
        _HEARTBEAT = Heartbeat(sys.stdout, interval=interval)
    else:
        _HEARTBEAT = Heartbeat(
            open(target, "a", encoding="utf-8"), interval=interval, close=True
        )
    return _HEARTBEAT


def disable_heartbeat() -> None:
    global _HEARTBEAT
    if _HEARTBEAT is not None:
        _HEARTBEAT.close()
        _HEARTBEAT = None


def configure_from_env(environ=os.environ) -> None:
    """Honor ``REPRO_ATTRIBUTION`` and ``REPRO_PROGRESS``.

    ``REPRO_ATTRIBUTION=1`` enables attributed execution (the CLI also
    sets the variable before the worker pool exists, so spawn-platform
    workers come up attributed too).  ``REPRO_PROGRESS`` names the
    heartbeat target (``stderr``/``stdout``/path; see
    :func:`enable_heartbeat`); ``REPRO_PROGRESS_INTERVAL`` is the
    rate-limit in seconds (default 0: every round).
    """
    if environ.get("REPRO_ATTRIBUTION", "").strip() in ("1", "on", "true"):
        enable(True)
    target = environ.get("REPRO_PROGRESS", "").strip()
    if target and target not in ("0", "off", "false"):
        try:
            interval = float(environ.get("REPRO_PROGRESS_INTERVAL", "0"))
        except ValueError:
            interval = 0.0
        enable_heartbeat(target, interval=interval)


configure_from_env()
