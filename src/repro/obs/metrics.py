"""Mergeable latency metrics: log-bucket histograms and the metrics log.

:class:`Histogram` is the distribution-aware counterpart of
:class:`~repro.obs.telemetry.SpanStats`' totals: fixed log-scale
buckets (so two histograms recorded in different processes merge
exactly, bucket by bucket), plus count/sum/min/max and interpolated
percentiles.  Everything is plain picklable state -- the executor ships
worker-side histograms back to the parent and merges them by name.

:class:`MetricsLog` is the structured JSONL metrics log behind the
CLI's ``--metrics-log PATH`` / ``REPRO_METRICS``: one self-describing
``repro.obs/log/v1`` record per line, each written with a single
``write()`` call so concurrent writers never interleave partial lines.
"""

from __future__ import annotations

import json
import time
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Tuple

#: Schema tag carried by every metrics-log record.
LOG_SCHEMA = "repro.obs/log/v1"

#: Fixed bucket upper bounds in seconds: five buckets per decade from
#: 100ns to 100s (each bucket spans a factor of 10^0.2 ~ 1.58x).  Fixed
#: boundaries are what make histograms mergeable across processes --
#: every recorder bins identically, so a merge is element-wise addition.
BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** (exponent / 5.0) for exponent in range(-35, 11)
)

#: Bucket count: one per bound plus the overflow bucket (> 100s).
BUCKET_COUNT = len(BUCKET_BOUNDS) + 1


class Histogram:
    """A fixed-log-bucket latency histogram with exact merges.

    ``record()`` is a bisect over :data:`BUCKET_BOUNDS` plus four
    scalar updates -- cheap enough for every span close.  ``merge()``
    is associative and commutative on counts/min/max (bucket counts add
    element-wise), which the property tests assert via hypothesis.
    """

    __slots__ = ("name", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str = ""):
        self.name = name
        self.counts: List[int] = [0] * BUCKET_COUNT
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    # -- recording ------------------------------------------------------

    def record(self, value: float) -> None:
        self.counts[bisect_right(BUCKET_BOUNDS, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def zero(self) -> None:
        """Reset in place (handles stay valid, mirroring Counter/Gauge)."""
        for index in range(BUCKET_COUNT):
            self.counts[index] = 0
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    # -- merging --------------------------------------------------------

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram in place; returns self."""
        for index, bucket in enumerate(other.counts):
            if bucket:
                self.counts[index] += bucket
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    def merge_dict(self, state: dict) -> "Histogram":
        """Fold a serialized histogram (``to_dict`` shape) into this one.

        An empty state (count 0) contributes nothing: its serialized
        ``min`` is the 0.0 placeholder, not an observation, and folding
        it in would clobber a real minimum.
        """
        if not int(state.get("count", 0)):
            return self
        for index, bucket in state.get("buckets", {}).items():
            self.counts[int(index)] += int(bucket)
        self.count += int(state.get("count", 0))
        self.sum += float(state.get("sum", 0.0))
        low = state.get("min")
        if low is not None and float(low) < self.min:
            self.min = float(low)
        high = state.get("max")
        if high is not None and float(high) > self.max:
            self.max = float(high)
        return self

    # -- percentiles ----------------------------------------------------

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1), linearly interpolated in-bucket.

        Clamped to the exact observed ``[min, max]`` so a single-sample
        histogram reports that sample for every percentile.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket in enumerate(self.counts):
            if bucket == 0:
                continue
            if cumulative + bucket >= rank:
                low = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                high = (
                    BUCKET_BOUNDS[index]
                    if index < len(BUCKET_BOUNDS)
                    else max(self.max, low)
                )
                fraction = (rank - cumulative) / bucket
                value = low + (high - low) * fraction
                return min(max(value, self.min), self.max)
            cumulative += bucket
        return self.max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON state: summary scalars, percentiles, sparse buckets.

        The sparse ``buckets`` map (bucket index -> count, JSON keys are
        strings) is what keeps serialized histograms mergeable --
        ``repro stats`` folds multi-run metrics logs back together with
        :meth:`merge_dict`.
        """
        state = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": {
                str(index): bucket
                for index, bucket in enumerate(self.counts)
                if bucket
            },
        }
        return state

    @classmethod
    def from_dict(cls, state: dict, name: str = "") -> "Histogram":
        built = cls(name)
        built.merge_dict(state)
        return built

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}: n={self.count}, "
            f"p50={self.p50:.6f}, p95={self.p95:.6f})"
        )


def merge_histogram_dicts(states: Iterable[dict], name: str = "") -> Histogram:
    """Fold any number of serialized histograms into one."""
    merged = Histogram(name)
    for state in states:
        merged.merge_dict(state)
    return merged


class MetricsLog:
    """Append-only JSONL metrics log (``repro.obs/log/v1``).

    Each record is one JSON object on one line, written with a single
    ``write()`` on a file opened in append mode -- on POSIX an
    O_APPEND write never interleaves with another writer's, so several
    processes can share one log.  The CLI appends one ``run`` record
    per invocation from its ``finally`` block, so failing runs are
    logged too (with their nonzero status).
    """

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")
        self._closed = False

    def write_record(self, record: dict) -> None:
        payload = dict(record)
        payload.setdefault("schema", LOG_SCHEMA)
        self._handle.write(json.dumps(payload, sort_keys=True, default=str) + "\n")
        self._handle.flush()

    def log_run(
        self,
        *,
        command: str,
        status: int,
        seconds: float,
        snapshot: dict,
        run_id: Optional[str] = None,
        argv: Optional[List[str]] = None,
    ) -> None:
        """Append one ``run`` record: invocation metadata + full snapshot."""
        record = {
            "kind": "run",
            "ts": time.time(),
            "command": command,
            "status": status,
            "seconds": seconds,
            "snapshot": snapshot,
        }
        if run_id is not None:
            record["run_id"] = run_id
        if argv is not None:
            record["argv"] = list(argv)
        self.write_record(record)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "MetricsLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
