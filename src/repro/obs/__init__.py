"""``repro.obs`` -- zero-dependency telemetry for the whole library.

Usage from instrumented code (all module-level helpers act on the
process-wide default :class:`~repro.obs.telemetry.Telemetry` registry)::

    from ..obs import counter, gauge, span

    with span("chase.standard"):
        counter("chase.tgd_firings").inc()
        gauge("instance.nulls").set(7)

Usage from consumers::

    from repro import obs

    obs.reset()
    ... run an exchange ...
    print(obs.to_json(indent=2))          # stable schema, see docs
    table = obs.render_profile()          # human-readable per-phase table

Sinks (``--trace-json``, ``REPRO_LOG``, tests) are described in
``docs/observability.md`` together with the metric name registry and the
JSON schemas.
"""

from __future__ import annotations

import logging
import os
from typing import Iterator, List, Optional

from . import attribution
from .metrics import Histogram, MetricsLog
from .provenance import (
    Justification,
    ProvenanceLedger,
    active_ledger,
    recording,
)
from .sinks import (
    NULL_SINK,
    EventSink,
    JsonLinesSink,
    LoggingSink,
    NullSink,
    RecordingSink,
    TeeSink,
    TraceViewerSink,
)
from .telemetry import (
    DEFAULT,
    SCHEMA,
    STATE_SCHEMA,
    Counter,
    Gauge,
    SpanStats,
    Telemetry,
    register_gauge_provider,
    register_state_section,
)

__all__ = [
    "attribution",
    "Counter",
    "EventSink",
    "Gauge",
    "Histogram",
    "JsonLinesSink",
    "MetricsLog",
    "Justification",
    "LoggingSink",
    "NULL_SINK",
    "NullSink",
    "ProvenanceLedger",
    "RecordingSink",
    "SCHEMA",
    "STATE_SCHEMA",
    "SpanStats",
    "TeeSink",
    "Telemetry",
    "TraceViewerSink",
    "active_ledger",
    "configure_from_env",
    "counter",
    "event",
    "gauge",
    "get_telemetry",
    "histogram",
    "install_sink",
    "register_gauge_provider",
    "register_state_section",
    "recording",
    "render_profile",
    "reset",
    "snapshot",
    "span",
    "span_stats",
    "to_json",
]


def get_telemetry() -> Telemetry:
    """The process-wide default registry."""
    return DEFAULT


def counter(name: str) -> Counter:
    return DEFAULT.counter(name)


def gauge(name: str) -> Gauge:
    return DEFAULT.gauge(name)


def span(name: str):
    return DEFAULT.span(name)


def span_stats(name: str) -> SpanStats:
    return DEFAULT.span_stats(name)


def histogram(name: str) -> Histogram:
    return DEFAULT.histogram(name)


def event(name: str, **fields) -> None:
    DEFAULT.event(name, **fields)


def snapshot() -> dict:
    return DEFAULT.snapshot()


def to_json(indent: Optional[int] = None) -> str:
    return DEFAULT.to_json(indent=indent)


def reset() -> None:
    DEFAULT.reset()


def install_sink(sink: EventSink) -> EventSink:
    return DEFAULT.install_sink(sink)


def render_profile(data: Optional[dict] = None) -> str:
    """A fixed-width per-phase table of a snapshot (default: current).

    Spans first (path, calls, total seconds), then counters, then
    gauges.  This is what the CLI's ``--profile`` flag prints to stderr
    and what ``repro report`` embeds in its metrics section.
    """
    state = data if data is not None else snapshot()
    lines: List[str] = []
    spans = state.get("spans", {})
    if spans:
        width = max(len(path) for path in spans)
        lines.append(
            f"{'span'.ljust(width)}  {'calls':>7}  {'seconds':>10}"
            f"  {'p50':>10}  {'p95':>10}  {'max':>10}"
        )
        for path, stats in spans.items():
            lines.append(
                f"{path.ljust(width)}  {stats['count']:>7}  "
                f"{stats['seconds']:>10.4f}  "
                f"{stats.get('p50', 0.0):>10.6f}  "
                f"{stats.get('p95', 0.0):>10.6f}  "
                f"{stats.get('max', 0.0):>10.6f}"
            )
    histograms = state.get("histograms", {})
    if histograms:
        if lines:
            lines.append("")
        width = max(len(name) for name in histograms)
        lines.append(
            f"{'histogram'.ljust(width)}  {'count':>7}  {'sum':>10}"
            f"  {'p50':>10}  {'p95':>10}  {'p99':>10}"
        )
        for name, stats in histograms.items():
            lines.append(
                f"{name.ljust(width)}  {stats['count']:>7}  "
                f"{stats['sum']:>10.4f}  {stats['p50']:>10.6f}  "
                f"{stats['p95']:>10.6f}  {stats['p99']:>10.6f}"
            )
    counters = state.get("counters", {})
    if counters:
        if lines:
            lines.append("")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"{name.ljust(width)}  {value}")
    gauges = state.get("gauges", {})
    if gauges:
        if lines:
            lines.append("")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"{name.ljust(width)}  {value}")
    return "\n".join(lines) if lines else "(no telemetry recorded)"


_ENV_LEVELS = {"debug": logging.DEBUG, "info": logging.INFO}


def configure_from_env(environ=os.environ) -> Optional[LoggingSink]:
    """Honor ``REPRO_LOG=debug|info``: route events to stdlib logging.

    Installs a :class:`LoggingSink` on the default registry (tee'd with
    any sink already installed) and makes sure the ``repro.obs`` logger
    has a handler and an effective level, so library users get telemetry
    without touching the sink API.  Returns the sink, or None when the
    variable is unset or names an unknown level.
    """
    level_name = environ.get("REPRO_LOG", "").strip().lower()
    level = _ENV_LEVELS.get(level_name)
    if level is None:
        return None
    logger = logging.getLogger("repro.obs")
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)
    sink = LoggingSink(logger, level)
    current = DEFAULT.sink
    if current is NULL_SINK:
        DEFAULT.install_sink(sink)
    else:
        DEFAULT.install_sink(TeeSink(current, sink))
    return sink


configure_from_env()
