"""Ablation: blockwise core vs global endomorphism folding.

DESIGN.md lists the core algorithm as a design choice (the paper relies
on Gottlob-Nash's polynomial algorithm; we fold).  The blockwise variant
exploits the Gaifman-block decomposition that makes FKP's core
computation polynomial on canonical solutions -- this module measures
the gap and verifies both algorithms agree.
"""

import time

import pytest

from repro.core import isomorphic
from repro.generators import example_2_1_scaled_source, star_source
from repro.generators.settings_library import example_2_1_setting
from repro.homomorphism import block_statistics, blockwise_core, core

from conftest import fit_polynomial_degree


class TestCoreAblation:
    def test_scaled_example_2_1(self, benchmark, report):
        setting = example_2_1_setting()
        table = report.table(
            "Core ablation on canonical solutions (Example 2.1 family)",
            ("|T|", "#blocks", "largest", "folding (s)", "blockwise (s)", "agree"),
        )
        for pairs in (8, 16, 32, 64):
            source = example_2_1_scaled_source(pairs, seed=31)
            canonical = setting.canonical_universal_solution(source)
            stats = block_statistics(canonical)
            started = time.perf_counter()
            folded = core(canonical)
            folding_time = time.perf_counter() - started
            started = time.perf_counter()
            blocked = blockwise_core(canonical)
            blockwise_time = time.perf_counter() - started
            agree = isomorphic(folded, blocked)
            table.row(
                len(canonical),
                stats["blocks"],
                stats["largest"],
                f"{folding_time:.4f}",
                f"{blockwise_time:.4f}",
                agree,
            )
            assert agree
        canonical = setting.canonical_universal_solution(
            example_2_1_scaled_source(32, seed=31)
        )
        benchmark(blockwise_core, canonical)

    def test_folding_baseline(self, benchmark):
        setting = example_2_1_setting()
        canonical = setting.canonical_universal_solution(
            example_2_1_scaled_source(32, seed=31)
        )
        benchmark(core, canonical)

    def test_many_tiny_blocks(self, benchmark, report):
        """The FKP sweet spot: many independent one-null blocks."""
        from repro.core import Schema
        from repro.exchange import DataExchangeSetting

        setting = DataExchangeSetting.from_strings(
            Schema.of(N=2),
            Schema.of(F=2),
            ["N(x, y) -> exists z . F(x, z)", "N(x, y) -> F(x, y)"],
        )
        table = report.table(
            "Core ablation: many independent blocks (star family)",
            ("rays", "folding (s)", "blockwise (s)"),
        )
        for rays in (8, 16, 32):
            source = star_source(rays)
            canonical = setting.canonical_universal_solution(source)
            started = time.perf_counter()
            folded = core(canonical)
            folding_time = time.perf_counter() - started
            started = time.perf_counter()
            blocked = blockwise_core(canonical)
            blockwise_time = time.perf_counter() - started
            assert isomorphic(folded, blocked)
            table.row(rays, f"{folding_time:.4f}", f"{blockwise_time:.4f}")
        canonical = setting.canonical_universal_solution(star_source(16))
        benchmark(blockwise_core, canonical)
