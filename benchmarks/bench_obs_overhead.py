"""Telemetry overhead: what instrumentation costs on the solve path.

Every ``solve`` runs under ``repro.obs`` unconditionally -- counters,
span histograms, and (only when a sink is installed) trace events.  The
operational claim this module regenerates: the quiet path (NULL_SINK,
the default) adds negligible cost, and even a live recording sink keeps
the overhead bounded, so leaving ``--trace-viewer`` or ``--metrics-log``
on in production is safe.

Two medians land in ``BENCH_obs.json`` via
``conftest.pytest_sessionfinish`` and are diffed by the CI bench gate:

* ``solve_telemetry_quiet`` -- no sink installed (events suppressed);
* ``solve_telemetry_emitting`` -- a ``RecordingSink`` receiving every
  span event.
"""

import time

import pytest

import repro.obs as obs
from repro.exchange import solve
from repro.generators import example_2_1_scaled_source
from repro.generators.settings_library import example_2_1_setting

#: Scaled-source size: big enough that the solve does real chase work,
#: small enough that the pair of benchmarks stays in CI budget.
SOURCE_PAIRS = 48

#: Below this quiet-path cost, timer noise dominates the ratio and the
#: overhead bound is skipped (same policy as bench_engine).
TIMING_FLOOR_SECONDS = 0.01

#: A recording sink may not cost more than this multiple of the quiet
#: path.  Deliberately loose: the claim is "bounded", not "free".
MAX_OVERHEAD_RATIO = 3.0


@pytest.fixture(autouse=True)
def quiet_telemetry():
    previous = obs.install_sink(obs.NULL_SINK)
    obs.reset()
    # The overhead bound below is only meaningful for the default
    # configuration: attributed execution (explain-plan's profiled
    # matcher) must never be on in a bench leg.
    assert not obs.attribution.enabled(), (
        "attributed execution is on; the obs overhead gate measures "
        "the default path (attribution must stay opt-in)"
    )
    yield
    obs.install_sink(previous)
    obs.reset()


def _workload():
    return example_2_1_setting(), example_2_1_scaled_source(SOURCE_PAIRS)


class TestObsOverhead:
    def test_solve_telemetry_quiet(self, benchmark):
        """The default path: counters and histograms, no event sink."""
        setting, source = _workload()
        result = benchmark(solve, setting, source)
        assert result.cwa_solution_exists
        assert obs.snapshot()["counters"]["chase.tgd_firings"] > 0

    def test_solve_telemetry_emitting(self, benchmark, report):
        """The traced path: every span start/end hits a live sink."""
        setting, source = _workload()

        started = time.perf_counter()
        solve(setting, source)
        quiet_time = time.perf_counter() - started

        sink = obs.RecordingSink()
        obs.install_sink(sink)
        started = time.perf_counter()
        result = solve(setting, source)
        emitting_time = time.perf_counter() - started
        assert result.cwa_solution_exists
        assert sink.events, "live sink received no span events"
        benchmark(solve, setting, source)

        table = report.table(
            f"Telemetry overhead, example_2_1_scaled_source({SOURCE_PAIRS})",
            ("path", "first-run seconds", "events"),
        )
        table.row("quiet", f"{quiet_time:.4f}", 0)
        table.row("emitting", f"{emitting_time:.4f}", len(sink.events))
        if quiet_time >= TIMING_FLOOR_SECONDS:
            assert emitting_time < quiet_time * MAX_OVERHEAD_RATIO
