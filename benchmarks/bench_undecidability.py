"""Theorem 6.2 / Example 6.1 -- the undecidability constructions, bounded.

Undecidable problems cannot be benchmarked to an answer; what we
regenerate is the *behaviour* the proofs rely on:

* D_halt simulates Turing machines: the chase readout equals the direct
  simulation, and its cost grows linearly with the simulated steps;
* halting machines admit a finite certified witness (solution +
  CWA-presolution), while for looping machines the NEXT chain grows
  without bound in the chase budget;
* D_emb (Example 6.1): every modular solution is a genuine solution, yet
  the paper's chain argument refutes each of them as a CWA-solution --
  Existence-of-Solutions and Existence-of-CWA-Solutions genuinely
  diverge on this input.
"""

import time

import pytest

from repro.cwa import is_cwa_presolution
from repro.reductions.semigroup import (
    d_emb_setting,
    example_6_1_source,
    modular_addition_solution,
    refute_cwa_solution,
)
from repro.reductions.turing import (
    chase_configurations,
    d_halt_setting,
    encode_machine,
    halting_machine,
    halting_witness,
    zigzag_machine,
)


class TestDHalt:
    def test_simulation_fidelity(self, benchmark, report):
        table = report.table(
            "D_halt chase vs direct TM simulation",
            ("machine", "steps compared", "match"),
        )
        for name, machine in (
            ("halting(2)", halting_machine(2)),
            ("halting(3)", halting_machine(3)),
            ("zigzag", zigzag_machine()),
        ):
            run = machine.run_on_empty(8)
            expected = [(c.state, c.head) for c in run.configurations]
            readout = chase_configurations(machine, chase_steps=420)
            overlap = min(len(readout), len(expected), 5)
            match = readout[:overlap] == expected[:overlap]
            table.row(name, overlap, match)
            assert match
        benchmark(chase_configurations, halting_machine(1), chase_steps=200)

    def test_witness_certification(self, benchmark, report):
        table = report.table(
            "Finite witnesses for halting machines",
            ("machine", "|witness|", "solution?", "CWA-presolution?"),
        )
        setting = d_halt_setting()
        for k in (1, 2):
            machine = halting_machine(k)
            source = encode_machine(machine)
            witness = halting_witness(machine)
            is_solution = setting.is_solution(source, witness)
            presolution = (
                is_cwa_presolution(setting, source, witness) if k == 1 else "-"
            )
            table.row(f"halting({k})", len(witness), is_solution, presolution)
            assert is_solution
            if k == 1:
                assert presolution is True
        benchmark(halting_witness, halting_machine(1))

    def test_chain_growth_for_looping_machine(self, benchmark, report):
        table = report.table(
            "Looping machine: NEXT-chain length vs chase budget",
            ("budget", "configurations reached"),
        )
        machine = zigzag_machine()
        lengths = []
        for budget in (150, 300, 600):
            chain = chase_configurations(machine, chase_steps=budget)
            lengths.append(len(chain))
            table.row(budget, len(chain))
        assert lengths[0] < lengths[1] < lengths[2]
        benchmark(chase_configurations, machine, chase_steps=150)


class TestDEmb:
    def test_solutions_exist_but_no_cwa_solution(self, benchmark, report):
        setting = d_emb_setting()
        source = example_6_1_source()
        table = report.table(
            "Example 6.1: modular solutions and their refutations",
            ("k", "|Z_(k+2)| table", "is solution", "refuted as CWA-solution"),
        )
        for k in (0, 1, 2, 3):
            candidate = modular_addition_solution(k)
            is_solution = setting.is_solution(source, candidate)
            refutation = refute_cwa_solution(candidate)
            table.row(k, len(candidate), is_solution, refutation is not None)
            assert is_solution
            assert refutation is not None
        benchmark(refute_cwa_solution, modular_addition_solution(2))
