"""The α-chase engine and CWA-presolution recognition -- Section 4/6.

Measures the machinery this paper introduces:

* α-chase throughput under the three regimes of Example 4.4 (success,
  failure, divergence detection),
* oblivious (fresh-α) chase scaling on richly acyclic, egd-free settings
  (where it is guaranteed to terminate),
* the NP recognition procedure ``is_cwa_presolution`` on growing
  instances (end of Section 6: the problem is in NP for weakly acyclic
  settings; our backtracking recognizer is the witness search).
"""

import time

import pytest

from repro.chase import ExplicitAlpha, alpha_chase, oblivious_chase
from repro.core import Const, Null, NullFactory, Schema
from repro.cwa import is_cwa_presolution
from repro.exchange import DataExchangeSetting
from repro.generators import star_source
from repro.generators.settings_library import (
    example_2_1_setting,
    example_2_1_source,
)
from repro.logic import parse_instance

from conftest import fit_polynomial_degree


def _example_alpha(setting):
    d1, d2 = setting.st_dependencies
    d3, d4 = setting.target_dependencies

    def values(*items):
        return tuple(
            Null(i) if isinstance(i, int) else Const(i) for i in items
        )

    return ExplicitAlpha(
        {
            (d2, values("a"), values("b")): values(1, 3),
            (d2, values("a"), values("c")): values(2, 3),
            (d3, values(3), values("a")): values(4),
        },
        fallback=NullFactory(100),
    )


class TestAlphaChaseRegimes:
    def test_example_4_4_regimes(self, benchmark, report):
        setting = example_2_1_setting()
        source = example_2_1_source()
        dependencies = list(setting.all_dependencies)
        table = report.table(
            "α-chase regimes (Example 4.4)",
            ("alpha", "status", "steps"),
        )
        outcome = alpha_chase(source, dependencies, _example_alpha(setting))
        table.row("α1", outcome.status.value, outcome.steps)
        assert outcome.successful
        benchmark(
            lambda: alpha_chase(
                source, dependencies, _example_alpha(setting)
            )
        )


class TestObliviousScaling:
    def test_oblivious_chase_scales(self, benchmark, report):
        setting = DataExchangeSetting.from_strings(
            Schema.of(N=2),
            Schema.of(F=2, G=2),
            ["N(x, y) -> exists z . F(x, z)"],
            ["F(x, z) -> exists w . G(z, w)"],
        )
        table = report.table(
            "Oblivious (fresh-α) chase on star sources",
            ("rays", "steps", "seconds"),
        )
        sizes, times = [], []
        for rays in (8, 16, 32, 64):
            source = star_source(rays)
            started = time.perf_counter()
            outcome, _ = oblivious_chase(
                source, list(setting.all_dependencies)
            )
            elapsed = time.perf_counter() - started
            assert outcome.successful
            sizes.append(rays)
            times.append(elapsed)
            table.row(rays, outcome.steps, f"{elapsed:.4f}")
        slope = fit_polynomial_degree(sizes, times)
        table.row("slope", "", f"{slope:.2f}")
        assert slope < 4.0
        benchmark(
            lambda: oblivious_chase(
                star_source(16), list(setting.all_dependencies)
            )
        )


class TestRecognitionScaling:
    def test_presolution_recognition(self, benchmark, report):
        """Recognizing the oblivious-chase result as a CWA-presolution:
        the NP witness search, measured on growing stars."""
        setting = DataExchangeSetting.from_strings(
            Schema.of(N=2),
            Schema.of(F=2),
            ["N(x, y) -> exists z . F(x, z)"],
        )
        table = report.table(
            "is_cwa_presolution on oblivious-chase results",
            ("rays", "|T|", "recognized", "seconds"),
        )
        for rays in (4, 8, 16, 32):
            source = star_source(rays)
            outcome, _ = oblivious_chase(
                source, list(setting.all_dependencies)
            )
            target = outcome.require_success().reduct(setting.target_schema)
            started = time.perf_counter()
            recognized = is_cwa_presolution(setting, source, target)
            elapsed = time.perf_counter() - started
            table.row(rays, len(target), recognized, f"{elapsed:.4f}")
            assert recognized
        source = star_source(8)
        outcome, _ = oblivious_chase(source, list(setting.all_dependencies))
        target = outcome.require_success().reduct(setting.target_schema)
        benchmark(is_cwa_presolution, setting, source, target)
