"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one artifact of the paper's
evaluation (see DESIGN.md §2): it *asserts* the qualitative claim (who
is polynomial, who blows up, which reductions are equivalences) and
*measures* with pytest-benchmark.  A report table is printed per module
so `pytest benchmarks/ --benchmark-only -s` reads like the paper.
"""

import math

import pytest


def fit_polynomial_degree(sizes, times):
    """Least-squares slope of log(time) against log(size).

    A slope bounded by a small constant across a geometric size sweep is
    the observable signature of polynomial (here: low-degree) scaling.
    Tiny times are clamped to avoid log(0) noise.
    """
    pairs = [
        (math.log(size), math.log(max(time, 1e-7)))
        for size, time in zip(sizes, times)
    ]
    n = len(pairs)
    mean_x = sum(x for x, _ in pairs) / n
    mean_y = sum(y for _, y in pairs) / n
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
    denominator = sum((x - mean_x) ** 2 for x, _ in pairs)
    if denominator == 0:
        return 0.0
    return numerator / denominator


def print_table(title, headers, rows):
    """Render a small fixed-width table to stdout."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


@pytest.fixture
def report():
    """A fixture collecting rows and printing them after the test."""

    class Report:
        def __init__(self):
            self.title = ""
            self.headers = ()
            self.rows = []

        def table(self, title, headers):
            self.title = title
            self.headers = headers
            return self

        def row(self, *cells):
            self.rows.append(cells)

        def flush(self):
            if self.rows:
                print_table(self.title, self.headers, self.rows)

    instance = Report()
    yield instance
    instance.flush()
