"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one artifact of the paper's
evaluation (see DESIGN.md §2): it *asserts* the qualitative claim (who
is polynomial, who blows up, which reductions are equivalences) and
*measures* with pytest-benchmark.  A report table is printed per module
so `pytest benchmarks/ --benchmark-only -s` reads like the paper.
"""

import json
import math
import pathlib

import pytest

#: Written at the repo root after every benchmark session so the bench
#: trajectory accumulates in version control.  One flat JSON object per
#: file: ``<bench name>.median_seconds`` / ``.rounds`` / ``.params`` keys
#: plus a ``counter.<name>`` entry per ``repro.obs`` counter touched by
#: the session.  Table 1 benchmarks get their own file.
BENCH_CHASE_FILE = "BENCH_chase.json"
BENCH_TABLE1_FILE = "BENCH_table1.json"
BENCH_ENGINE_FILE = "BENCH_engine.json"
BENCH_MATCHING_FILE = "BENCH_matching.json"
BENCH_OBS_FILE = "BENCH_obs.json"
BENCH_SHARD_FILE = "BENCH_shard.json"
BENCH_INCREMENTAL_FILE = "BENCH_incremental.json"


def fit_polynomial_degree(sizes, times):
    """Least-squares slope of log(time) against log(size).

    A slope bounded by a small constant across a geometric size sweep is
    the observable signature of polynomial (here: low-degree) scaling.
    Tiny times are clamped to avoid log(0) noise.
    """
    pairs = [
        (math.log(size), math.log(max(time, 1e-7)))
        for size, time in zip(sizes, times)
    ]
    n = len(pairs)
    mean_x = sum(x for x, _ in pairs) / n
    mean_y = sum(y for _, y in pairs) / n
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
    denominator = sum((x - mean_x) ** 2 for x, _ in pairs)
    if denominator == 0:
        return 0.0
    return numerator / denominator


def print_table(title, headers, rows):
    """Render a small fixed-width table to stdout."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


def _median_seconds(bench):
    """The median of one pytest-benchmark result, defensively.

    ``bench.stats`` is the Metadata object in current pytest-benchmark
    releases and its ``.stats`` holds the Stats with ``.median``; older
    layouts expose ``.median`` directly.  Returns None when neither does.
    """
    stats = getattr(bench, "stats", None)
    for holder in (getattr(stats, "stats", None), stats, bench):
        median = getattr(holder, "median", None)
        if isinstance(median, (int, float)):
            return median
    return None


def _flat_record(benches):
    """One flat JSON object for a group of benchmark results."""
    record = {"schema": "repro.bench/v1"}
    for bench in benches:
        name = getattr(bench, "name", None) or getattr(bench, "fullname", "?")
        median = _median_seconds(bench)
        if median is not None:
            record[f"{name}.median_seconds"] = median
        rounds = getattr(getattr(bench, "stats", None), "rounds", None)
        if isinstance(rounds, int):
            record[f"{name}.rounds"] = rounds
        params = getattr(bench, "params", None)
        if params:
            record[f"{name}.params"] = json.dumps(
                params, sort_keys=True, default=str
            )
    try:
        from repro.obs import snapshot

        for counter_name, value in snapshot()["counters"].items():
            record[f"counter.{counter_name}"] = value
    except Exception:  # pragma: no cover - repro not importable
        pass
    return record


def pytest_sessionfinish(session, exitstatus):
    """Persist benchmark medians + telemetry counters at the repo root."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    benches = [
        bench
        for bench in getattr(bench_session, "benchmarks", None) or []
        if _median_seconds(bench) is not None
    ]
    if not benches:
        return
    root = pathlib.Path(__file__).resolve().parent.parent
    groups = {
        BENCH_CHASE_FILE: [],
        BENCH_TABLE1_FILE: [],
        BENCH_ENGINE_FILE: [],
        BENCH_MATCHING_FILE: [],
        BENCH_OBS_FILE: [],
        BENCH_SHARD_FILE: [],
        BENCH_INCREMENTAL_FILE: [],
    }
    for bench in benches:
        fullname = getattr(bench, "fullname", "") or ""
        if "table1" in fullname:
            target = BENCH_TABLE1_FILE
        elif "bench_engine" in fullname:
            target = BENCH_ENGINE_FILE
        elif "bench_matching" in fullname:
            target = BENCH_MATCHING_FILE
        elif "bench_obs" in fullname:
            target = BENCH_OBS_FILE
        elif "bench_shard" in fullname:
            target = BENCH_SHARD_FILE
        elif "bench_incremental" in fullname:
            target = BENCH_INCREMENTAL_FILE
        else:
            target = BENCH_CHASE_FILE
        groups[target].append(bench)
    for filename, group in groups.items():
        if not group:
            continue
        payload = json.dumps(_flat_record(group), indent=2, sort_keys=True)
        (root / filename).write_text(payload + "\n", encoding="utf-8")


@pytest.fixture
def report():
    """A fixture collecting rows and printing them after the test."""

    class Report:
        def __init__(self):
            self.title = ""
            self.headers = ()
            self.rows = []

        def table(self, title, headers):
            self.title = title
            self.headers = headers
            return self

        def row(self, *cells):
            self.rows.append(cells)

        def flush(self):
            if self.rows:
                print_table(self.title, self.headers, self.rows)

    instance = Report()
    yield instance
    instance.flush()
