"""Ablation: semi-naive vs batched standard chase.

DESIGN.md calls out the trigger-discovery strategy as a design choice;
this module races the two engines on workloads with different shapes:

* shallow-and-wide (scaled Example 2.1: many triggers, little
  recursion) -- batching is already near-optimal;
* deep recursion (transitive closure over a long path) -- semi-naive's
  delta seeding avoids rescanning the quadratic match space per pass.

Both engines must produce hom-equivalent results on every input.
"""

import time

import pytest

from repro.chase import standard_chase
from repro.chase.seminaive import seminaive_chase
from repro.dependencies import parse_dependencies
from repro.generators import example_2_1_scaled_source
from repro.generators.settings_library import example_2_1_setting
from repro.homomorphism import hom_equivalent
from repro.logic import parse_instance

TRANSITIVE = parse_dependencies(
    ["E(x, y) -> R(x, y)", "R(x, y) & E(y, z) -> R(x, z)"]
)


def _path(length):
    return parse_instance(
        ", ".join(f"E('v{i}','v{i + 1}')" for i in range(length))
    )


class TestAblation:
    def test_transitive_closure_race(self, benchmark, report):
        table = report.table(
            "Chase ablation: transitive closure over a path",
            ("path length", "batched (s)", "semi-naive (s)", "same result"),
        )
        for length in (10, 20, 40):
            source = _path(length)
            started = time.perf_counter()
            full = standard_chase(source, TRANSITIVE)
            batched_time = time.perf_counter() - started
            started = time.perf_counter()
            semi = seminaive_chase(source, TRANSITIVE)
            semi_time = time.perf_counter() - started
            same = semi.instance.atoms_of("R") == full.instance.atoms_of("R")
            table.row(
                length, f"{batched_time:.4f}", f"{semi_time:.4f}", same
            )
            assert same
        benchmark(seminaive_chase, _path(20), TRANSITIVE)

    def test_shallow_workload_race(self, benchmark, report):
        setting = example_2_1_setting()
        dependencies = list(setting.all_dependencies)
        table = report.table(
            "Chase ablation: scaled Example 2.1 (shallow)",
            ("|S|", "batched (s)", "semi-naive (s)", "hom-equivalent"),
        )
        for pairs in (16, 32, 64):
            source = example_2_1_scaled_source(pairs, seed=29)
            started = time.perf_counter()
            full = standard_chase(source, dependencies)
            batched_time = time.perf_counter() - started
            started = time.perf_counter()
            semi = seminaive_chase(source, dependencies)
            semi_time = time.perf_counter() - started
            equivalent = hom_equivalent(full.instance, semi.instance)
            table.row(
                len(source),
                f"{batched_time:.4f}",
                f"{semi_time:.4f}",
                equivalent,
            )
            assert equivalent
        benchmark(
            seminaive_chase,
            example_2_1_scaled_source(32, seed=29),
            dependencies,
        )

    def test_batched_baseline(self, benchmark):
        benchmark(
            standard_chase,
            example_2_1_scaled_source(32, seed=29),
            list(example_2_1_setting().all_dependencies),
        )
