"""Match-throughput benchmarks for the compiled plan layer.

The compiled plans of :mod:`repro.logic.plans` exist for exactly one
reason: the chase and the core evaluate the *same* patterns thousands of
times over block-structured instances.  This module measures that
primitive directly -- full enumeration of join patterns over canonical
solutions of the scaled Example 2.1 family -- so a regression in the
compiler or the executor shows up here before it blurs into the
end-to-end chase numbers.  Results land in ``BENCH_matching.json`` and
are gated by ``repro bench-compare`` alongside the chase family.
"""

import pytest

from repro.core import Atom, RelationSymbol, Variable
from repro.generators import example_2_1_scaled_source
from repro.generators.settings_library import example_2_1_setting
from repro.logic import plans
from repro.logic.matching import match

E = RelationSymbol("E", 2)
F = RelationSymbol("F", 2)
G = RelationSymbol("G", 2)

x, y, z, w = (Variable(name) for name in "xyzw")


def _canonical(pairs, seed=13):
    setting = example_2_1_setting()
    source = example_2_1_scaled_source(pairs, seed=seed)
    return setting.canonical_universal_solution(source)


def _drain(patterns, instance, inequalities=()):
    total = 0
    for _ in match(patterns, instance, inequalities=inequalities):
        total += 1
    return total


class TestMatchThroughput:
    def test_match_single_atom_scan(self, benchmark):
        """Full scan of one relation: the executor's floor."""
        target = _canonical(32)
        patterns = (Atom(E, (x, y)),)
        count = benchmark(_drain, patterns, target)
        assert count == len(target.atoms_of(E))

    def test_match_two_atom_join(self, benchmark):
        """The chase's bread and butter: a bound-variable join."""
        target = _canonical(32)
        patterns = (Atom(E, (x, y)), Atom(F, (x, z)))
        count = benchmark(_drain, patterns, target)
        assert count > 0

    def test_match_join_with_inequality(self, benchmark):
        """Join plus pruning inequality (egd-premise shape)."""
        target = _canonical(32)
        patterns = (Atom(F, (x, y)), Atom(F, (x, z)))
        count = benchmark(_drain, patterns, target, ((y, z),))
        assert count >= 0

    def test_match_star_pattern(self, benchmark):
        """A 3-atom star: one hub variable joining three relations."""
        target = _canonical(32)
        patterns = (Atom(E, (x, y)), Atom(F, (x, z)), Atom(E, (x, w)))
        count = benchmark(_drain, patterns, target)
        assert count > 0


class TestPlanOverheads:
    def test_plan_cache_hit_rate(self, report):
        """Compiling happens once per distinct pattern, not once per call."""
        from repro.obs import counter

        target = _canonical(16)  # chase compiles its own plans; build first
        plans.reset_cache()
        compilations = counter("plan.compilations")
        hits = counter("plan.cache_hits")
        before = (compilations.value, hits.value)
        patterns = (Atom(E, (x, y)), Atom(F, (x, z)))
        for _ in range(100):
            _drain(patterns, target)
        compiled = compilations.value - before[0]
        hit = hits.value - before[1]
        report.table(
            "Plan cache on a repeated join", ("compilations", "cache hits")
        ).row(compiled, hit)
        assert compiled == 1
        assert hit == 99

    def test_compiled_beats_interpreted_on_repeats(self, benchmark):
        """The compiled path must win its own reason to exist.

        Measured (not asserted -- timing assertions flake): enumerate the
        same join 20 times, the shape every chase pass has.
        """
        target = _canonical(16)
        patterns = (Atom(E, (x, y)), Atom(F, (x, z)), Atom(G, (z, w)))

        def run():
            return sum(_drain(patterns, target) for _ in range(20))

        benchmark(run)
