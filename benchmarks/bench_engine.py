"""The engine layer: worker sweeps and the cold/warm cache split.

Regenerates the operational claims behind ``repro.engine`` (DESIGN.md
does not cover these -- they are implementation guarantees, not paper
theorems):

* a parallel run of the four-semantics battery returns byte-identical
  answers for every worker count, and the overhead of going through the
  executor stays bounded;
* a warm :class:`repro.engine.ResultCache` serves ``solve`` without
  re-running the chase or the core computation, and the warm path is
  measurably cheaper than the cold one.

Medians land in ``BENCH_engine.json`` via ``conftest.pytest_sessionfinish``.
"""

import os
import time

import pytest

import repro.obs as obs
from repro.answering import all_four_semantics
from repro.engine import Executor, ResultCache
from repro.exchange import solve
from repro.generators import example_2_1_scaled_source
from repro.generators.settings_library import (
    example_2_1_setting,
    example_2_1_source,
)
from repro.logic import parse_query

#: The Table-1-style query battery over Example 2.1's target schema.
QUERY_TEXTS = (
    "Q(x) :- E(x, y)",
    "Q(x) :- F(x, y)",
    "Q(x, y) :- E(x, y)",
    "Q(x) :- E(x, y) & F(y, z)",
)

#: How many cold chase seconds we require before trusting a wall-clock
#: comparison; below this, timer noise dominates any real signal.
TIMING_FLOOR_SECONDS = 0.01


@pytest.fixture(autouse=True)
def fresh_telemetry():
    obs.reset()
    yield
    obs.reset()


def _semantics_battery(setting, source, queries, executor=None):
    return [
        all_four_semantics(setting, source, query, executor=executor)
        for query in queries
    ]


class TestWorkerSweep:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_semantics_batch(self, benchmark, report, workers):
        setting = example_2_1_setting()
        source = example_2_1_source()
        queries = [parse_query(text) for text in QUERY_TEXTS]
        expected = _semantics_battery(setting, source, queries)

        started = time.perf_counter()
        serial_time = None
        if workers > 1:
            _semantics_battery(setting, source, queries)
            serial_time = time.perf_counter() - started

        with Executor(workers=workers) as executor:
            started = time.perf_counter()
            result = _semantics_battery(
                setting, source, queries, executor=executor
            )
            executor_time = time.perf_counter() - started
            assert result == expected
            benchmark(
                _semantics_battery, setting, source, queries, executor
            )

        table = report.table(
            f"Four-semantics battery, workers={workers}",
            ("workers", "parallel", "battery (s)", "== serial"),
        )
        table.row(
            workers,
            executor.parallel,
            f"{executor_time:.4f}",
            result == expected,
        )
        # On a multi-core box the pool must not blow the runtime up;
        # actual speedup depends on the workload/overhead ratio, so we
        # only bound the regression.  Single-core machines (CI included)
        # get parity checking alone.
        cpus = os.cpu_count() or 1
        if (
            workers > 1
            and cpus >= 2
            and serial_time is not None
            and serial_time >= TIMING_FLOOR_SECONDS
        ):
            assert executor_time < serial_time * 10

    def test_worker_counts_agree_with_each_other(self, report):
        setting = example_2_1_setting()
        source = example_2_1_source()
        queries = [parse_query(text) for text in QUERY_TEXTS]
        outcomes = {}
        for workers in (1, 2, 4):
            with Executor(workers=workers) as executor:
                outcomes[workers] = _semantics_battery(
                    setting, source, queries, executor=executor
                )
        table = report.table(
            "Determinism across worker counts",
            ("workers", "matches workers=1"),
        )
        for workers, outcome in outcomes.items():
            table.row(workers, outcome == outcomes[1])
        assert outcomes[1] == outcomes[2] == outcomes[4]


class TestCacheColdWarm:
    def test_cold_solve_baseline(self, benchmark):
        """The uncached chase+core cost on the scaled source."""
        setting = example_2_1_setting()
        source = example_2_1_scaled_source(64)
        result = benchmark(solve, setting, source)
        assert result.cwa_solution_exists

    def test_warm_solve_hits_cache(self, benchmark, report, tmp_path):
        setting = example_2_1_setting()
        source = example_2_1_scaled_source(64)
        cache = ResultCache(tmp_path)

        started = time.perf_counter()
        cold = solve(setting, source, cache=cache)
        cold_time = time.perf_counter() - started

        obs.reset()
        started = time.perf_counter()
        warm = solve(setting, source, cache=cache)
        warm_time = time.perf_counter() - started

        found = obs.snapshot()["counters"]
        assert found["solve.cache_hits"] == 1
        assert found["engine.cache.hits"] >= 1
        assert all(
            value == 0
            for name, value in found.items()
            if name.startswith("chase.") or name.startswith("core.")
        )
        assert warm.canonical_solution == cold.canonical_solution
        assert warm.core_solution == cold.core_solution

        table = report.table(
            "Cold vs warm solve, example_2_1_scaled_source(64)",
            ("path", "seconds", "cache hits"),
        )
        table.row("cold", f"{cold_time:.4f}", 0)
        table.row("warm", f"{warm_time:.4f}", found["engine.cache.hits"])
        if cold_time >= TIMING_FLOOR_SECONDS:
            assert warm_time < cold_time

        # The benchmarked path is all warm hits: the persisted median is
        # the cache read cost, to set against the cold baseline above.
        benchmark(solve, setting, source, cache=cache)
