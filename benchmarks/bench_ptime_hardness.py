"""Proposition 7.8 -- PTIME-hardness of all four semantics (full tgds).

The full-tgd derivability setting makes the chase compute path-system
accessibility; the query Q() :- GoalT(g), Deriv(g) then answers the
PTIME-complete circuit value problem under *all four* semantics (no
nulls ⟹ a single possible world).  We sweep circuit sizes, check the
verdicts against direct evaluation, and measure the (polynomial) cost --
the hardness direction is the reduction itself.
"""

import time

import pytest

from repro.answering import all_four_semantics
from repro.reductions.circuit import (
    decide_derivable_via_certain_answers,
    derivability_setting,
    encode_path_system,
    goal_query,
    random_circuit,
)

from conftest import fit_polynomial_degree


class TestProposition78:
    def test_circuit_sweep(self, benchmark, report):
        table = report.table(
            "Prop. 7.8: circuit value via certain answers (full tgds)",
            ("#gates", "circuit value", "certain verdict", "seconds"),
        )
        sizes, times = [], []
        for gates in (10, 20, 40, 80):
            circuit = random_circuit(5, gates, seed=gates + 1)
            system = circuit.to_path_system()
            started = time.perf_counter()
            verdict = decide_derivable_via_certain_answers(system)
            elapsed = time.perf_counter() - started
            sizes.append(gates)
            times.append(elapsed)
            table.row(gates, circuit.evaluate(), verdict, f"{elapsed:.4f}")
            assert verdict == circuit.evaluate()
        slope = fit_polynomial_degree(sizes, times)
        table.row("slope", "", "", f"{slope:.2f}")
        assert slope < 4.0
        system = random_circuit(5, 20, seed=3).to_path_system()
        benchmark(decide_derivable_via_certain_answers, system)

    def test_all_four_semantics_coincide(self, benchmark, report):
        setting = derivability_setting()
        table = report.table(
            "Prop. 7.8: the four semantics coincide (no nulls)",
            ("seed", "derivable", "all four agree"),
        )
        for seed in range(4):
            system = random_circuit(4, 12, seed=seed).to_path_system()
            source = encode_path_system(system)
            results = all_four_semantics(setting, source, goal_query())
            verdicts = {bool(v) for v in results.values()}
            table.row(seed, system.goal_derivable, len(verdicts) == 1)
            assert len(verdicts) == 1
            assert verdicts == {system.goal_derivable}
        system = random_circuit(4, 12, seed=0).to_path_system()
        benchmark(
            all_four_semantics,
            setting,
            encode_path_system(system),
            goal_query(),
        )
