"""Section 7 -- the four answer semantics and their reductions.

Regenerates:

* Theorem 7.1: the fast paths (□Q on the core; □Q/◇Q on CanSol for the
  restricted classes) equal the direct definitions over the enumerated
  CWA-solution space -- correctness, plus the speedup measurement;
* Corollary 7.2: the inclusion chain on a battery of queries;
* Theorem 7.6 / Lemma 7.7: the PTIME UCQ path vs the exact semantics.
"""

import time

import pytest

from repro.answering import (
    all_four_semantics,
    answers_over_space,
    certain_answers,
    ucq_certain_answers,
)
from repro.cwa import enumerate_cwa_solutions
from repro.generators.settings_library import (
    egd_only_setting,
    example_2_1_setting,
    example_2_1_source,
)
from repro.logic import parse_instance, parse_query


class TestTheorem71:
    def test_fast_path_equals_direct(self, benchmark, report):
        setting = example_2_1_setting()
        source = example_2_1_source()
        solutions = enumerate_cwa_solutions(setting, source)
        query = parse_query("Q(x) :- E(x, y)")
        table = report.table(
            "Theorem 7.1: □Q(Core) vs ⋂ over the solution space",
            ("mode", "via core (s)", "via space (s)", "equal"),
        )
        started = time.perf_counter()
        fast = certain_answers(setting, source, query)
        fast_time = time.perf_counter() - started
        started = time.perf_counter()
        direct = answers_over_space(
            query, solutions, setting.target_dependencies, "certain"
        )
        direct_time = time.perf_counter() - started
        table.row("certain□", f"{fast_time:.4f}", f"{direct_time:.4f}", fast == direct)
        assert fast == direct
        benchmark(certain_answers, setting, source, query)

    def test_cansol_path_on_egd_setting(self, benchmark, report):
        from repro.answering import maybe_answers, potential_certain_answers

        setting = egd_only_setting()
        source = parse_instance(
            "Emp('e1','d1'), Emp('e2','d1'), Emp('e3','d2')"
        )
        solutions = enumerate_cwa_solutions(setting, source)
        query = parse_query("Q(d, m) :- Dept(d, m)")
        table = report.table(
            "Theorem 7.1 on the egd-only class: CanSol fast paths",
            ("semantics", "fast == direct"),
        )
        fast = potential_certain_answers(setting, source, query)
        direct = answers_over_space(
            query, solutions, setting.target_dependencies, "potential_certain"
        )
        table.row("certain◇", fast == direct)
        assert fast == direct
        fast_maybe = maybe_answers(setting, source, query)
        direct_maybe = answers_over_space(
            query, solutions, setting.target_dependencies, "maybe"
        )
        table.row("maybe◇", fast_maybe == direct_maybe)
        assert fast_maybe == direct_maybe
        benchmark(potential_certain_answers, setting, source, query)


class TestCorollary72:
    def test_inclusion_chain_battery(self, benchmark, report):
        setting = example_2_1_setting()
        source = example_2_1_source()
        solutions = enumerate_cwa_solutions(setting, source)
        battery = [
            "Q(x) :- E(x, y)",
            "Q(y) :- E('a', y)",
            "Q(x, y) :- F(x, y)",
            "Q(x) :- G(x, y)",
            "Q() :- E(x, y), F(x, z), y != z",
        ]
        table = report.table(
            "Corollary 7.2: |certain□| ≤ |certain◇| ≤ |maybe□| ≤ |maybe◇|",
            ("query", "□", "◇c", "□m", "◇m", "chain holds"),
        )
        for text in battery:
            query = parse_query(text)
            results = all_four_semantics(
                setting, source, query, solutions=solutions
            )
            chain = (
                results["certain"]
                <= results["potential_certain"]
                <= results["persistent_maybe"]
                <= results["maybe"]
            )
            table.row(
                text,
                len(results["certain"]),
                len(results["potential_certain"]),
                len(results["persistent_maybe"]),
                len(results["maybe"]),
                chain,
            )
            assert chain
        benchmark(
            all_four_semantics,
            setting,
            source,
            parse_query("Q(x) :- E(x, y)"),
            solutions=solutions,
        )


class TestTheorem76:
    def test_ucq_fast_path_vs_exact(self, benchmark, report):
        setting = example_2_1_setting()
        source = example_2_1_source()
        query = parse_query("Q(x) :- E(x, y) ; Q(x) :- F(x, y)")
        table = report.table(
            "Theorem 7.6 / Lemma 7.7: naive UCQ path vs exact □",
            ("path", "seconds", "answers"),
        )
        started = time.perf_counter()
        fast = ucq_certain_answers(setting, source, query)
        fast_time = time.perf_counter() - started
        started = time.perf_counter()
        exact = certain_answers(setting, source, query)
        exact_time = time.perf_counter() - started
        table.row("Q(core)↓ (PTIME)", f"{fast_time:.4f}", len(fast))
        table.row("valuation sweep", f"{exact_time:.4f}", len(exact))
        assert fast == exact
        benchmark(ucq_certain_answers, setting, source, query)
