"""Partitioned chase + block-parallel core: the >= 2x scaling gate.

The workload is the `test_core_scales_on_chase_results` shape scaled
sideways: a union of value-disjoint copies of the scaled Example 2.1
source.  Serial `solve` chases the union and runs the blockwise core
against the whole canonical solution; the partitioned path shards the
chase per component and minimizes each component against itself only.
Because the blockwise pass is superlinear in the number of components
(every block is matched against the full instance), partition locality
is an algorithmic win before process parallelism is even engaged.

The gate: at 4 workers the sharded solve must beat serial solve by
``REPRO_SHARD_SPEEDUP_FLOOR`` (default 2.0x) on the median of several
rounds, with byte-identical fp/v1 fingerprints.  CI compares the
committed ``BENCH_shard.json`` against a fresh run via
``repro bench-compare``.
"""

import os
import statistics
import time

from repro.engine import Executor, fingerprint_instance
from repro.exchange import solve
from repro.generators import disjoint_scaled_sources
from repro.generators.settings_library import example_2_1_setting

SPEEDUP_FLOOR = float(os.environ.get("REPRO_SHARD_SPEEDUP_FLOOR", "2.0"))

COPIES = 6
PAIRS = 24
SEED = 5


def _workload():
    return example_2_1_setting(), disjoint_scaled_sources(
        COPIES, PAIRS, seed=SEED
    )


def _fp(instance):
    return fingerprint_instance(instance, canonical=True)


def _median_of(fn, rounds=3):
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


class TestShardScaling:
    def test_sharded_solve_speedup_at_four_workers(self, report):
        setting, source = _workload()
        serial_result = solve(setting, source, shard="off")
        with Executor(workers=4) as executor:
            sharded_result = solve(setting, source, executor=executor)

            # Byte-identical outcomes are a precondition for the gate.
            assert _fp(serial_result.canonical_solution) == _fp(
                sharded_result.canonical_solution
            )
            assert _fp(serial_result.core_solution) == _fp(
                sharded_result.core_solution
            )

            serial_median = _median_of(
                lambda: solve(setting, source, shard="off")
            )
            sharded_median = _median_of(
                lambda: solve(setting, source, executor=executor)
            )

        speedup = serial_median / max(sharded_median, 1e-9)
        table = report.table(
            "Sharded solve vs serial solve (6 components, 4 workers)",
            ("path", "median seconds", "speedup"),
        )
        table.row("serial", f"{serial_median:.4f}", "1.00x")
        table.row("sharded@4", f"{sharded_median:.4f}", f"{speedup:.2f}x")
        assert speedup >= SPEEDUP_FLOOR, (
            f"sharded solve {speedup:.2f}x < required {SPEEDUP_FLOOR:.2f}x"
        )

    def test_partition_locality_scales_with_components(self, report):
        # The serial/partitioned gap must widen as components are added:
        # that is the superlinearity the partition removes.
        setting = example_2_1_setting()
        table = report.table(
            "Partition locality vs component count (in-process)",
            ("components", "serial s", "partitioned s", "speedup"),
        )
        ratios = []
        for copies in (2, 4, 6):
            source = disjoint_scaled_sources(copies, PAIRS, seed=SEED)
            serial = _median_of(
                lambda: solve(setting, source, shard="off"), rounds=1
            )
            partitioned = _median_of(
                lambda: solve(setting, source, shard="on"), rounds=1
            )
            ratio = serial / max(partitioned, 1e-9)
            ratios.append(ratio)
            table.row(
                copies, f"{serial:.4f}", f"{partitioned:.4f}", f"{ratio:.2f}x"
            )
        assert ratios[-1] > ratios[0]

    def test_bench_serial_solve(self, benchmark):
        setting, source = _workload()
        benchmark(solve, setting, source, shard="off")

    def test_bench_sharded_solve(self, benchmark):
        setting, source = _workload()
        with Executor(workers=4) as executor:
            benchmark(lambda: solve(setting, source, executor=executor))
