"""Example 5.3 -- exponentially many incomparable CWA-solutions.

Regenerates the paper's Section 5 claims as measurements:

* |CWA-solutions(S_n)| = 4^n ≥ 2^n for the Example 5.3 setting,
* the paper's T and T' are in the space and are hom-images of no other
  solution (pairwise incomparability),
* the core is the unique minimal solution; no maximal solution exists.
"""

import time

import pytest

from repro.core import isomorphic
from repro.cwa import (
    core_solution,
    enumerate_cwa_solutions,
    is_homomorphic_image_of,
    is_minimal_cwa_solution,
)
from repro.generators.settings_library import (
    example_5_3_named_solutions,
    example_5_3_setting,
    example_5_3_source,
)


class TestExponentialGrowth:
    def test_solution_count_is_4_to_the_n(self, benchmark, report):
        setting = example_5_3_setting()
        table = report.table(
            "Example 5.3: |CWA-solutions(S_n)| (paper: ≥ 2^n)",
            ("n", "|solutions|", "4^n", "≥ 2^n", "seconds"),
        )
        for n in (1, 2):
            source = example_5_3_source(n)
            started = time.perf_counter()
            solutions = enumerate_cwa_solutions(setting, source)
            elapsed = time.perf_counter() - started
            table.row(
                n,
                len(solutions),
                4 ** n,
                len(solutions) >= 2 ** n,
                f"{elapsed:.2f}",
            )
            assert len(solutions) == 4 ** n
        benchmark(
            enumerate_cwa_solutions, setting, example_5_3_source(1)
        )

    def test_incomparability(self, benchmark, report):
        setting = example_5_3_setting()
        source = example_5_3_source(1)
        solutions = enumerate_cwa_solutions(setting, source)
        t, t_prime = example_5_3_named_solutions()
        table = report.table(
            "Example 5.3: hom-image relation among the four solutions",
            ("solution", "|T|", "image of others?"),
        )
        for named, label in ((t, "T (paper)"), (t_prime, "T' (paper)")):
            others = [s for s in solutions if not isomorphic(s, named)]
            image = any(is_homomorphic_image_of(named, o) for o in others)
            table.row(label, len(named), image)
            assert not image
        benchmark(is_homomorphic_image_of, t, t_prime)

    def test_space_census(self, benchmark, report):
        """The full poset census via SolutionSpace (Section 5 as API)."""
        from repro.cwa import SolutionSpace

        setting = example_5_3_setting()
        source = example_5_3_source(1)
        space = SolutionSpace.build(setting, source)
        census = space.census()
        table = report.table(
            "Example 5.3: solution-space census (n = 1)",
            ("solutions", "minimal", "maximal", "largest antichain", "chain?"),
        )
        table.row(
            census["solutions"],
            census["minimal"],
            census["maximal"],
            census["largest_antichain"],
            census["is_chain"],
        )
        assert census["solutions"] == 4
        assert census["minimal"] == 1  # the core, Theorem 5.1
        assert census["maximal"] == 0  # Example 5.3's point
        assert census["largest_antichain"] >= 2  # ≥ 2^n with n = 1
        benchmark(SolutionSpace.build, setting, source)

    def test_unique_minimal_no_maximal(self, benchmark, report):
        setting = example_5_3_setting()
        source = example_5_3_source(1)
        solutions = enumerate_cwa_solutions(setting, source)
        minimal = core_solution(setting, source)
        table = report.table(
            "Example 5.3: minimality/maximality census",
            ("candidate", "minimal?", "maximal?"),
        )
        maximal_count = 0
        for index, candidate in enumerate(solutions):
            is_min = is_minimal_cwa_solution(
                setting, source, candidate, solutions
            )
            is_max = all(
                is_homomorphic_image_of(other, candidate)
                for other in solutions
            )
            maximal_count += is_max
            table.row(f"#{index} (|T|={len(candidate)})", is_min, is_max)
            assert is_min == isomorphic(candidate, minimal)
        assert maximal_count == 0  # no maximal CWA-solution (Example 5.3)
        benchmark(core_solution, setting, source)
