"""Incremental delta maintenance vs full re-solve: the >= 10x gate.

The workload is a 1%-edit stream against a constant-anchored setting
(every conclusion atom carries a frontier constant, so the incremental
core's touch tests discriminate between blocks): 200 disjoint ``R``
rows chase into 3 anchored target atoms each, and every edit swaps 1%
of the rows (delete two, insert two fresh ones).  A
:class:`~repro.incremental.DeltaSession` maintains the CWA-solution
across the stream; the comparator re-solves the edited source from
scratch with the same (semi-naive) engine.

The gate: the median ``apply`` must beat the median full re-solve by
``REPRO_INCREMENTAL_SPEEDUP_FLOOR`` (default 10.0x), with every
incremental core fp/v1 fingerprint-identical to the from-scratch one.
CI compares the committed ``BENCH_incremental.json`` against a fresh
run via ``repro bench-compare``.
"""

import os
import random
import statistics
import time

from repro.core import Atom, Const, Instance, Schema
from repro.core.schema import RelationSymbol
from repro.engine import fingerprint_instance
from repro.exchange import solve
from repro.exchange.setting import DataExchangeSetting
from repro.incremental import DeltaSession, SourceDelta

SPEEDUP_FLOOR = float(
    os.environ.get("REPRO_INCREMENTAL_SPEEDUP_FLOOR", "10.0")
)

ROWS = 200
EDITS = 12
EDIT_FRACTION = 0.01

_R = RelationSymbol("R", 2)


def _setting():
    return DataExchangeSetting.from_strings(
        Schema.of(R=2),
        Schema.of(A=2, B=2, C=2),
        ["R(x,y) -> exists z . A(x,z) & B(z,y)"],
        ["B(z,y) -> exists w . C(y,w)"],
    )


def _source(rows):
    return Instance(
        Atom(_R, (Const(f"s{i}"), Const(f"t{i}"))) for i in range(rows)
    )


def _fp(instance):
    return fingerprint_instance(instance, canonical=True)


def _edit_stream(session, edits, seed=7):
    """Yield one 1%-swap :class:`SourceDelta` per step."""
    rng = random.Random(seed)
    edit_size = max(1, round(len(session.source) * EDIT_FRACTION))
    fresh = 0
    for _ in range(edits):
        atoms = sorted(session.source)
        victims = rng.sample(atoms, edit_size)
        insertions = []
        for _ in range(edit_size):
            fresh += 1
            insertions.append(
                Atom(_R, (Const(f"new{fresh}a"), Const(f"new{fresh}b")))
            )
        yield SourceDelta(insertions=insertions, deletions=victims)


class TestIncrementalSpeedup:
    def test_one_percent_edit_stream_speedup(self, report):
        setting = _setting()
        session = DeltaSession(setting, _source(ROWS))
        incremental_times = []
        full_times = []
        for delta in _edit_stream(session, EDITS):
            started = time.perf_counter()
            result = session.apply(delta)
            incremental_times.append(time.perf_counter() - started)

            started = time.perf_counter()
            batch = solve(setting, session.source, engine="seminaive")
            full_times.append(time.perf_counter() - started)

            # Fingerprint parity on every single edit is the gate's
            # precondition: a fast wrong answer is worthless.
            assert _fp(result.core_solution) == _fp(batch.core_solution)

        incremental_median = statistics.median(incremental_times)
        full_median = statistics.median(full_times)
        speedup = full_median / max(incremental_median, 1e-9)
        table = report.table(
            f"1%-edit stream, {ROWS} rows, {EDITS} edits",
            ("path", "median seconds", "speedup"),
        )
        table.row("full re-solve", f"{full_median:.4f}", "1.00x")
        table.row(
            "incremental", f"{incremental_median:.4f}", f"{speedup:.1f}x"
        )
        assert speedup >= SPEEDUP_FLOOR, (
            f"incremental apply {speedup:.2f}x < required "
            f"{SPEEDUP_FLOOR:.2f}x"
        )

    def test_bench_incremental_apply(self, benchmark):
        setting = _setting()
        session = DeltaSession(setting, _source(ROWS))
        deltas = iter(_edit_stream(session, 10_000))
        benchmark.pedantic(
            lambda: session.apply(next(deltas)), rounds=10, iterations=1
        )

    def test_bench_full_resolve(self, benchmark):
        setting = _setting()
        source = _source(ROWS)
        benchmark.pedantic(
            lambda: solve(setting, source, engine="seminaive"),
            rounds=3,
            iterations=1,
        )
