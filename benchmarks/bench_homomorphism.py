"""Homomorphism and core micro-benchmarks.

These are the primitives every Section-4/5 construction stands on: the
universality test (Theorem 4.8), the core (Theorem 5.1), and the
isomorphism check used for "up to renaming of nulls" comparisons.
"""

import time

import pytest

from repro.core import isomorphic
from repro.generators import example_2_1_scaled_source, star_source
from repro.generators.settings_library import example_2_1_setting
from repro.homomorphism import core, find_homomorphism, has_homomorphism

from conftest import fit_polynomial_degree


def _canonical(pairs, seed=13):
    setting = example_2_1_setting()
    source = example_2_1_scaled_source(pairs, seed=seed)
    return setting.canonical_universal_solution(source)


class TestHomomorphismSearch:
    def test_self_homomorphism_scaling(self, benchmark, report):
        table = report.table(
            "Homomorphism search T → T on canonical solutions",
            ("|T|", "#nulls", "seconds"),
        )
        sizes, times = [], []
        for pairs in (8, 16, 32):
            target = _canonical(pairs)
            started = time.perf_counter()
            assert find_homomorphism(target, target) is not None
            elapsed = time.perf_counter() - started
            sizes.append(len(target))
            times.append(elapsed)
            table.row(len(target), len(target.nulls()), f"{elapsed:.4f}")
        benchmark(find_homomorphism, _canonical(16), _canonical(16))

    def test_universality_check(self, benchmark):
        """hom(T → U): the Theorem 4.8 workhorse."""
        setting = example_2_1_setting()
        source = example_2_1_scaled_source(16, seed=2)
        canonical = setting.canonical_universal_solution(source)
        folded = core(canonical)
        result = benchmark(has_homomorphism, canonical, folded)
        assert result


class TestCore:
    def test_core_scaling(self, benchmark, report):
        table = report.table(
            "Core computation (endomorphism folding)",
            ("|T|", "|core|", "seconds"),
        )
        sizes, times = [], []
        for pairs in (8, 16, 32):
            target = _canonical(pairs, seed=21)
            started = time.perf_counter()
            folded = core(target)
            elapsed = time.perf_counter() - started
            sizes.append(len(target))
            times.append(elapsed)
            table.row(len(target), len(folded), f"{elapsed:.4f}")
        slope = fit_polynomial_degree(sizes, times)
        table.row("slope", "", f"{slope:.2f}")
        benchmark(core, _canonical(16, seed=21))


class TestIsomorphism:
    def test_isomorphism_check(self, benchmark):
        left = _canonical(16, seed=5)
        right = left.canonical()
        result = benchmark(isomorphic, left, right)
        assert result
