"""Existence-of-CWA-Solutions (Proposition 6.6).

Two claims are regenerated:

* for weakly acyclic settings the problem is decided in polynomial time
  (size sweep over the egd-carrying Example 2.1 family, positive and
  negative instances);
* it is PTIME-hard: the path-system reduction maps derivability to
  NON-existence, cross-checked against the direct fixpoint.
"""

import time

import pytest

from repro.core import Schema
from repro.exchange import DataExchangeSetting, existence_of_cwa_solutions
from repro.generators import employee_source
from repro.generators.settings_library import example_2_1_setting
from repro.generators.random_instances import example_2_1_scaled_source
from repro.logic import parse_instance
from repro.reductions.circuit import (
    decide_derivable_via_existence,
    encode_path_system,
    existence_hardness_setting,
    random_circuit,
)

from conftest import fit_polynomial_degree


class TestPolynomialDecision:
    def test_positive_instances_scale(self, benchmark, report):
        setting = example_2_1_setting()
        table = report.table(
            "Existence-of-CWA-Solutions: positive instances (weakly acyclic)",
            ("|S|", "exists?", "seconds"),
        )
        sizes, times = [], []
        for pairs in (8, 16, 32, 64):
            source = example_2_1_scaled_source(pairs, seed=11)
            started = time.perf_counter()
            exists = existence_of_cwa_solutions(setting, source)
            elapsed = time.perf_counter() - started
            assert exists
            sizes.append(len(source))
            times.append(elapsed)
            table.row(len(source), exists, f"{elapsed:.4f}")
        slope = fit_polynomial_degree(sizes, times)
        table.row("slope", "", f"{slope:.2f}")
        assert slope < 4.0
        benchmark(
            existence_of_cwa_solutions,
            setting,
            example_2_1_scaled_source(32, seed=11),
        )

    def test_negative_instances_scale(self, benchmark, report):
        """Key-violating sources: the chase fails quickly at any size."""
        setting = DataExchangeSetting.from_strings(
            Schema.of(Src=2),
            Schema.of(Tgt=2),
            ["Src(x, y) -> Tgt(x, y)"],
            ["Tgt(x, y) & Tgt(x, z) -> y = z"],
        )
        table = report.table(
            "Existence-of-CWA-Solutions: negative instances",
            ("|S|", "exists?", "seconds"),
        )
        for size in (10, 40, 160):
            atoms = ", ".join(
                f"Src('k{i}','v{i}')" for i in range(size - 2)
            )
            source = parse_instance(atoms + ", Src('k0','clash'), Src('k1','clash2')")
            started = time.perf_counter()
            exists = existence_of_cwa_solutions(setting, source)
            elapsed = time.perf_counter() - started
            assert not exists
            table.row(len(source), exists, f"{elapsed:.4f}")
        benchmark(existence_of_cwa_solutions, setting, source)


class TestPtimeHardness:
    def test_path_system_reduction(self, benchmark, report):
        """Goal derivable ⟺ no CWA-solution (the Prop. 6.6 hardness
        carrier), swept over growing random circuits."""
        table = report.table(
            "PTIME-hardness carrier: circuit value via existence",
            ("#gates", "derivable", "existence verdict", "agrees"),
        )
        for gates in (5, 10, 20, 40):
            system = random_circuit(4, gates, seed=gates).to_path_system()
            verdict = decide_derivable_via_existence(system)
            agrees = verdict == system.goal_derivable
            table.row(gates, system.goal_derivable, verdict, agrees)
            assert agrees
        system = random_circuit(4, 20, seed=20).to_path_system()
        benchmark(decide_derivable_via_existence, system)

    def test_reduction_source_sizes(self, benchmark):
        system = random_circuit(6, 30, seed=2).to_path_system()
        source = encode_path_system(system, with_bit=True)
        assert len(source) >= 30
        benchmark(encode_path_system, system, True)
