"""Theorem 7.5 -- co-NP-hardness of certain answers with inequalities.

The executed reduction: 3-CNF φ ↦ (S_φ, Q) with

    φ unsatisfiable  ⟺  certain□(Q, S_φ) = certain◇(Q, S_φ) = true.

Measured content:

* verdict equivalence against a brute-force SAT solver over a seed sweep,
* the certain□ = certain◇ agreement (the reduction works for both
  semantics, as the paper notes for Mądry's proof),
* cost growth with the number of variables: the canonical world count is
  Bell(#vars + 2), and measured time follows it -- the observable face
  of co-NP-hardness (Table 1, column 2, rows 1-2).
"""

import time

import pytest

from repro.answering.valuations import count_valuations
from repro.reductions.threesat import (
    decide_unsat_via_certain_answers,
    random_formula,
    unsatisfiable_formula,
)


class TestReductionEquivalence:
    def test_seed_sweep(self, benchmark, report):
        table = report.table(
            "Theorem 7.5 reduction: certain answers vs brute-force SAT",
            ("seed", "#vars", "#clauses", "sat?", "certain=UNSAT?", "agree"),
        )
        for seed in range(10):
            formula = random_formula(3, 5, seed=seed)
            expected = not formula.satisfiable
            verdict = decide_unsat_via_certain_answers(formula)
            table.row(
                seed, 3, 5, formula.satisfiable, verdict, verdict == expected
            )
            assert verdict == expected
        benchmark(decide_unsat_via_certain_answers, random_formula(3, 5, seed=0))

    def test_both_semantics_agree(self, benchmark, report):
        table = report.table(
            "certain□ vs certain◇ on the reduction",
            ("seed", "certain□", "certain◇"),
        )
        for seed in range(4):
            formula = random_formula(3, 4, seed=seed)
            box = decide_unsat_via_certain_answers(formula)
            diamond = decide_unsat_via_certain_answers(
                formula, semantics="potential_certain"
            )
            table.row(seed, box, diamond)
            assert box == diamond
        benchmark(
            decide_unsat_via_certain_answers,
            random_formula(3, 4, seed=0),
            semantics="potential_certain",
        )


class TestExponentialCost:
    def test_cost_tracks_bell_numbers(self, benchmark, report):
        """The decisive measurement: time grows with Bell(#vars+2)."""
        table = report.table(
            "Cost of exact certain answers vs formula size (UNSAT inputs)",
            ("#vars", "worlds Bell(n+2)", "seconds"),
        )
        timings = []
        for extra in (0, 1, 2):
            formula = unsatisfiable_formula()
            # Pad with additional (easily satisfied in isolation) clauses
            # over fresh variables to grow the null count.
            clauses = list(formula.clauses)
            for index in range(extra):
                name = f"pad{index}"
                clauses.append(((name, "+"), (name, "+"), (name, "-")))
            from repro.reductions.threesat import ThreeSat

            padded = ThreeSat(clauses)
            variables = len(padded.variables)
            started = time.perf_counter()
            verdict = decide_unsat_via_certain_answers(padded)
            elapsed = time.perf_counter() - started
            timings.append(elapsed)
            table.row(variables, count_valuations(variables + 2, 0), f"{elapsed:.3f}")
            assert verdict is True  # padding never fixes unsatisfiability
        assert timings[-1] > timings[0]
        benchmark(decide_unsat_via_certain_answers, unsatisfiable_formula())
