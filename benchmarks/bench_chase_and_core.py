"""Chase and core scaling -- the engine behind Proposition 6.6.

Proposition 6.6's PTIME procedure is: standard chase (polynomially many
steps for weakly acyclic settings), then the core.  This module measures
both stages separately on two scalable families:

* the scaled Example 2.1 family (random M/N facts over a growing pool),
* the cascade family R0 → R1 → ... → Rk (chase depth grows with k).
"""

import time

import pytest

from repro.chase import standard_chase
from repro.exchange import solve
from repro.generators import (
    chain_setting,
    chain_source,
    example_2_1_scaled_source,
)
from repro.generators.settings_library import example_2_1_setting
from repro.homomorphism import core

from conftest import fit_polynomial_degree


class TestChaseScaling:
    def test_chase_scales_polynomially_in_source(self, benchmark, report):
        setting = example_2_1_setting()
        dependencies = list(setting.all_dependencies)
        table = report.table(
            "Standard chase on scaled Example 2.1",
            ("|S|", "chase steps", "|result|", "seconds"),
        )
        sizes, times = [], []
        for pairs in (8, 16, 32, 64, 128):
            source = example_2_1_scaled_source(pairs, seed=3)
            started = time.perf_counter()
            outcome = standard_chase(source, dependencies)
            elapsed = time.perf_counter() - started
            assert outcome.successful
            sizes.append(len(source))
            times.append(elapsed)
            table.row(
                len(source), outcome.steps, len(outcome.instance), f"{elapsed:.4f}"
            )
        slope = fit_polynomial_degree(sizes, times)
        table.row("slope", f"{slope:.2f}", "", "")
        assert slope < 4.0
        benchmark(
            standard_chase, example_2_1_scaled_source(32, seed=3), dependencies
        )

    def test_chase_scales_with_cascade_depth(self, benchmark, report):
        table = report.table(
            "Standard chase on the cascade family (depth sweep)",
            ("depth", "chase steps", "seconds"),
        )
        source = chain_source(3)
        for depth in (2, 4, 8, 16):
            setting = chain_setting(depth)
            started = time.perf_counter()
            outcome = standard_chase(source, list(setting.all_dependencies))
            elapsed = time.perf_counter() - started
            assert outcome.successful
            table.row(depth, outcome.steps, f"{elapsed:.4f}")
        benchmark(
            standard_chase,
            chain_source(3),
            list(chain_setting(8).all_dependencies),
        )


class TestCoreScaling:
    def test_core_scales_on_chase_results(self, benchmark, report):
        setting = example_2_1_setting()
        table = report.table(
            "Core computation on canonical solutions (Prop. 6.6 stage 2)",
            ("|canonical|", "|core|", "#nulls folded", "seconds"),
        )
        sizes, times = [], []
        for pairs in (8, 16, 32, 64):
            source = example_2_1_scaled_source(pairs, seed=5)
            canonical = setting.canonical_universal_solution(source)
            started = time.perf_counter()
            folded = core(canonical)
            elapsed = time.perf_counter() - started
            sizes.append(len(canonical))
            times.append(elapsed)
            table.row(
                len(canonical),
                len(folded),
                len(canonical.nulls()) - len(folded.nulls()),
                f"{elapsed:.4f}",
            )
        slope = fit_polynomial_degree(sizes, times)
        table.row("slope", f"{slope:.2f}", "", "")
        assert slope < 5.0
        canonical = setting.canonical_universal_solution(
            example_2_1_scaled_source(16, seed=5)
        )
        benchmark(core, canonical)

    def test_end_to_end_solve(self, benchmark):
        """The complete Proposition 6.6 pipeline as one measurement."""
        setting = example_2_1_setting()
        source = example_2_1_scaled_source(16, seed=9)
        result = benchmark(solve, setting, source)
        assert result.cwa_solution_exists
