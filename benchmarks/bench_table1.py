"""Table 1 -- complexity of certain□ / certain◇ by setting and query class.

The paper's only table:

    Setting class                 | UCQ    | UCQ + 1 ineq/disjunct | FO
    ------------------------------+--------+-----------------------+----------
    weakly acyclic                | PTIME  | co-NP-hard            | co-NP-hard
    richly acyclic                | PTIME  | co-NP-complete        | co-NP-complete
    Σst unrestricted, Σt egds     | PTIME  | PTIME                 | co-NP-complete
    Σst full, Σt egds + full tgds | PTIME  | PTIME                 | PTIME

No experiment can measure asymptotic lower bounds; what this module
regenerates is the table's *observable* content:

* every PTIME cell scales polynomially under a geometric size sweep
  (log-log slope below a small constant);
* every hard cell is backed by an executed reduction: 3-SAT instances
  map to certain-answer instances with matching verdicts, and the
  exact evaluation cost grows with the Bell number of the null count;
* row-4 cells collapse to a single possible world (no nulls), making
  even FO answering polynomial -- measured directly.

Row 3 / column 2 (PTIME via the algorithm of Fagin et al. [6]) is
verified for correctness at small scale against the exact semantics;
reimplementing [6]'s specialized polynomial algorithm is out of scope
(recorded in DESIGN.md / EXPERIMENTS.md).
"""

import time

import pytest

from repro.answering import certain_answers, ucq_certain_answers
from repro.answering.valuations import certain_on, count_valuations
from repro.core import Schema
from repro.cwa import cansol, core_solution
from repro.exchange import DataExchangeSetting
from repro.generators import employee_source, example_2_1_scaled_source
from repro.generators.settings_library import (
    egd_only_setting,
    example_2_1_setting,
    full_tgd_setting,
)
from repro.logic import parse_instance, parse_query
from repro.reductions.threesat import (
    decide_unsat_via_certain_answers,
    random_formula,
    unsatisfiable_formula,
)

from conftest import fit_polynomial_degree


UCQ_QUERY = "Q(x) :- E(x, y) ; Q(x) :- F(x, y)"


class TestRow1WeaklyAcyclic:
    """Row 1: weakly acyclic settings (Example 2.1's is also richly
    acyclic, covering row 2's PTIME cell)."""

    def test_ucq_ptime_cell(self, benchmark, report):
        setting = example_2_1_setting()
        query = parse_query(UCQ_QUERY)
        sizes, times = [], []
        table = report.table(
            "Table 1, rows 1-2, column UCQ: PTIME scaling",
            ("|S| atoms", "seconds", "answers"),
        )
        for pairs in (8, 16, 32, 64):
            source = example_2_1_scaled_source(pairs, seed=7)
            started = time.perf_counter()
            answers = ucq_certain_answers(setting, source, query)
            elapsed = time.perf_counter() - started
            sizes.append(len(source))
            times.append(elapsed)
            table.row(len(source), f"{elapsed:.4f}", len(answers))
        slope = fit_polynomial_degree(sizes, times)
        table.row("slope", f"{slope:.2f}", "(log-log; PTIME ⟹ small)")
        assert slope < 4.0
        benchmark(
            ucq_certain_answers,
            setting,
            example_2_1_scaled_source(20, seed=7),
            query,
        )

    def test_inequality_conp_cell(self, benchmark, report):
        """Column 2: the 3-SAT reduction's verdicts match brute-force
        SAT, and the world count grows like Bell(n + 2)."""
        table = report.table(
            "Table 1, rows 1-2, column UCQ+1ineq: co-NP-hardness carrier",
            ("#vars", "worlds (Bell(n+2))", "sat?", "certain says unsat?"),
        )
        for seed, variables in ((0, 2), (1, 3), (2, 3), (3, 4)):
            formula = random_formula(variables, 4 + variables, seed=seed)
            verdict = decide_unsat_via_certain_answers(formula)
            expected = not formula.satisfiable
            table.row(
                variables,
                count_valuations(variables + 2, 0),
                formula.satisfiable,
                verdict,
            )
            assert verdict == expected
        growth = [count_valuations(n + 2, 0) for n in (2, 3, 4, 5, 6)]
        assert all(b > 1.9 * a for a, b in zip(growth, growth[1:]))
        benchmark(
            decide_unsat_via_certain_answers, random_formula(3, 6, seed=0)
        )

    def test_inequality_conp_benchmark(self, benchmark):
        formula = unsatisfiable_formula()
        result = benchmark(decide_unsat_via_certain_answers, formula)
        assert result is True


class TestRow3EgdOnly:
    """Row 3: Σt consists of egds only."""

    def test_ucq_ptime_cell(self, benchmark, report):
        setting = egd_only_setting()
        query = parse_query("Q(d) :- Dept(d, m)")
        sizes, times = [], []
        table = report.table(
            "Table 1, row 3, column UCQ: PTIME scaling",
            ("#employees", "seconds", "answers"),
        )
        for employees in (20, 40, 80, 160):
            source = employee_source(employees, max(2, employees // 10), seed=1)
            started = time.perf_counter()
            answers = ucq_certain_answers(setting, source, query)
            elapsed = time.perf_counter() - started
            sizes.append(employees)
            times.append(elapsed)
            table.row(employees, f"{elapsed:.4f}", len(answers))
        slope = fit_polynomial_degree(sizes, times)
        table.row("slope", f"{slope:.2f}", "")
        assert slope < 4.0
        benchmark(
            ucq_certain_answers,
            setting,
            employee_source(40, 4, seed=1),
            query,
        )

    def test_inequality_ptime_cell_small_scale(self, benchmark, report):
        """Column 2 claims PTIME through [6]'s algorithm; we verify the
        *answers* at small scale with the exact semantics: with the key
        egd, distinct departments certainly have (possibly) distinct
        managers only when forced."""
        setting = egd_only_setting()
        table = report.table(
            "Table 1, row 3, column UCQ+1ineq: exact small-scale verdicts",
            ("source", "query verdict"),
        )
        source = parse_instance("Emp('e1','d1'), Emp('e2','d2')")
        query = parse_query(
            "Q() :- Dept('d1', m1), Dept('d2', m2), m1 != m2"
        )
        maximal = cansol(setting, source)
        verdict = bool(
            certain_on(query, maximal, setting.target_dependencies)
        )
        table.row("two departments", verdict)
        # The two managers are independent nulls: they might coincide.
        assert verdict is False

        minimal = core_solution(setting, source)
        same = bool(certain_on(query, minimal, setting.target_dependencies))
        table.row("(cross-check on the core)", same)
        assert same is False
        benchmark(certain_on, query, maximal, setting.target_dependencies)

    def test_fo_conp_cell(self, benchmark, report):
        """Column 3 stays co-NP-complete for egd-only settings: negation
        over unknown managers needs the full valuation sweep."""
        setting = egd_only_setting()
        source = parse_instance("Emp('e1','d1'), Emp('e2','d2')")
        query = parse_query("Q() := ~exists m . (Dept('d1', m) & Dept('d2', m))")
        answers = certain_answers(setting, source, query)
        # The managers *might* be equal, so the negation is not certain.
        assert not answers
        benchmark(certain_answers, setting, source, query)


class TestRow4FullTgds:
    """Row 4: everything full -- no nulls, every semantics PTIME."""

    def test_all_columns_ptime(self, benchmark, report):
        setting = full_tgd_setting()
        table = report.table(
            "Table 1, row 4: all query classes PTIME (no nulls)",
            ("#edges", "seconds (FO query!)", "answers"),
        )
        fo_query = parse_query(
            "Q(x) := Reach(x) & ~exists y . Link(x, y) & Reach(y)"
        )
        sizes, times = [], []
        for edges in (8, 16, 32):
            atoms = ", ".join(
                f"Edge('v{i}','v{i + 1}')" for i in range(edges)
            )
            source = parse_instance(atoms + ", Start('v0')")
            started = time.perf_counter()
            answers = certain_answers(setting, source, fo_query)
            elapsed = time.perf_counter() - started
            sizes.append(edges)
            times.append(elapsed)
            table.row(edges, f"{elapsed:.4f}", len(answers))
        slope = fit_polynomial_degree(sizes, times)
        table.row("slope", f"{slope:.2f}", "")
        assert slope < 5.0

        source = parse_instance(
            ", ".join(f"Edge('v{i}','v{i + 1}')" for i in range(10))
            + ", Start('v0')"
        )
        benchmark(certain_answers, setting, source, fo_query)

    def test_no_nulls_single_world(self, benchmark):
        setting = full_tgd_setting()
        source = parse_instance("Edge('a','b'), Start('a')")
        minimal = core_solution(setting, source)
        assert not minimal.nulls()
        benchmark(core_solution, setting, source)
