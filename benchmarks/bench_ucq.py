"""Theorem 7.6 -- PTIME certain answers for unions of conjunctive queries.

Two sweeps:

* data complexity: |S| grows, the query is fixed (the theorem's claim is
  about data complexity -- the slope must stay small);
* query size: more disjuncts / longer join chains on fixed data (not
  covered by the theorem, shown for context).

Both cross-check the fast path Q(T)↓ against the exact □-semantics on
the smallest instance of the sweep.
"""

import time

import pytest

from repro.answering import certain_answers, ucq_certain_answers
from repro.cwa import core_solution
from repro.generators import example_2_1_scaled_source
from repro.generators.settings_library import example_2_1_setting
from repro.logic import parse_query

from conftest import fit_polynomial_degree

FIXED_QUERY = "Q(x) :- E(x, y) ; Q(x) :- F(x, y) ; Q(x) :- G(x, y)"


class TestDataComplexity:
    def test_source_sweep(self, benchmark, report):
        setting = example_2_1_setting()
        query = parse_query(FIXED_QUERY)
        table = report.table(
            "Theorem 7.6: UCQ certain answers, data sweep",
            ("|S|", "seconds", "answers"),
        )
        sizes, times = [], []
        for pairs in (8, 16, 32, 64):
            source = example_2_1_scaled_source(pairs, seed=17)
            started = time.perf_counter()
            answers = ucq_certain_answers(setting, source, query)
            elapsed = time.perf_counter() - started
            sizes.append(len(source))
            times.append(elapsed)
            table.row(len(source), f"{elapsed:.4f}", len(answers))
        slope = fit_polynomial_degree(sizes, times)
        table.row("slope", f"{slope:.2f}", "")
        assert slope < 4.0
        benchmark(
            ucq_certain_answers,
            setting,
            example_2_1_scaled_source(16, seed=17),
            query,
        )

    def test_cross_check_against_exact(self, benchmark):
        setting = example_2_1_setting()
        source = example_2_1_scaled_source(4, seed=17)
        query = parse_query(FIXED_QUERY)
        fast = ucq_certain_answers(setting, source, query)
        exact = certain_answers(setting, source, query)
        assert fast == exact
        benchmark(ucq_certain_answers, setting, source, query)


class TestDatalogExtension:
    """Theorem 7.6 as stated covers datalog (infinitary UCQs)."""

    def test_recursive_datalog_scaling(self, benchmark, report):
        from repro.answering import datalog_certain_answers
        from repro.core import Schema
        from repro.exchange import DataExchangeSetting
        from repro.logic import parse_instance, parse_program

        setting = DataExchangeSetting.from_strings(
            Schema.of(Road=2, City=1),
            Schema.of(Link=2, Hub=1),
            [
                "Road(x, y) -> Link(x, y)",
                "City(x) -> exists y . Link(x, y)",
                "City(x) -> Hub(x)",
            ],
            [],
        )
        program = parse_program(
            "reach(x) :- Hub(x).\nreach(y) :- reach(x), Link(x, y).",
            goal="reach",
        )
        table = report.table(
            "Theorem 7.6 on datalog: recursive reachability, data sweep",
            ("path length", "seconds", "certain answers"),
        )
        sizes, times = [], []
        for length in (10, 20, 40, 80):
            atoms = ", ".join(
                f"Road('v{i}','v{i + 1}')" for i in range(length)
            )
            source = parse_instance(atoms + ", City('v0')")
            started = time.perf_counter()
            answers = datalog_certain_answers(setting, source, program)
            elapsed = time.perf_counter() - started
            sizes.append(length)
            times.append(elapsed)
            table.row(length, f"{elapsed:.4f}", len(answers))
            assert len(answers) == length + 1
        slope = fit_polynomial_degree(sizes, times)
        table.row("slope", f"{slope:.2f}", "")
        assert slope < 4.0
        atoms = ", ".join(f"Road('v{i}','v{i + 1}')" for i in range(20))
        source = parse_instance(atoms + ", City('v0')")
        benchmark(datalog_certain_answers, setting, source, program)


class TestQuerySizeSweep:
    def test_disjunct_sweep(self, benchmark, report):
        setting = example_2_1_setting()
        source = example_2_1_scaled_source(24, seed=19)
        solution = core_solution(setting, source)
        table = report.table(
            "UCQ evaluation vs number of disjuncts (fixed data)",
            ("#disjuncts", "seconds"),
        )
        variants = {
            1: "Q(x) :- E(x, y)",
            2: "Q(x) :- E(x, y) ; Q(x) :- F(x, y)",
            3: FIXED_QUERY,
            4: FIXED_QUERY + " ; Q(x) :- E(y, x)",
        }
        for count, text in variants.items():
            query = parse_query(text)
            started = time.perf_counter()
            ucq_certain_answers(setting, source, query, solution=solution)
            elapsed = time.perf_counter() - started
            table.row(count, f"{elapsed:.4f}")
        benchmark(
            ucq_certain_answers,
            setting,
            source,
            parse_query(FIXED_QUERY),
            solution=solution,
        )

    def test_join_chain_sweep(self, benchmark, report):
        setting = example_2_1_setting()
        source = example_2_1_scaled_source(24, seed=23)
        solution = core_solution(setting, source)
        table = report.table(
            "CQ evaluation vs join-chain length (fixed data)",
            ("chain length", "seconds"),
        )
        chains = {
            1: "Q(x) :- E(x, y1)",
            2: "Q(x) :- E(x, y1), E(y1, y2)",
            3: "Q(x) :- E(x, y1), E(y1, y2), E(y2, y3)",
        }
        for length, text in chains.items():
            query = parse_query(text)
            started = time.perf_counter()
            ucq_certain_answers(setting, source, query, solution=solution)
            elapsed = time.perf_counter() - started
            table.row(length, f"{elapsed:.4f}")
        benchmark(
            ucq_certain_answers,
            setting,
            source,
            parse_query(chains[3]),
            solution=solution,
        )
