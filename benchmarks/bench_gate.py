#!/usr/bin/env python
"""Standalone benchmark regression gate.

Thin wrapper so the gate can run without installing the package::

    python benchmarks/bench_gate.py BASELINE FRESH [--tolerance 0.25]

The full logic lives in :mod:`repro.benchgate` (also exposed as the
``repro bench-compare`` CLI subcommand); see that module for the gating
rules.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.benchgate import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
