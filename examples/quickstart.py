"""Quickstart: the paper's running example (Example 2.1), end to end.

Run with:  python examples/quickstart.py

Builds the data exchange setting D* = (σ, τ, Σst, Σt) with

    d1 = M(x1,x2) → E(x1,x2)
    d2 = N(x,y)   → ∃z1,z2 (E(x,z1) ∧ F(x,z2))
    d3 = F(y,x)   → ∃z G(x,z)
    d4 = F(x,y) ∧ F(x,z) → y = z

chases the source S* = {M(a,b), N(a,b), N(a,c)}, computes the core
(= the minimal CWA-solution, Theorem 5.1), classifies the paper's
candidate solutions T1, T2, T3, and answers a few queries.
"""

from repro import (
    DataExchangeSetting,
    Schema,
    certain_answers,
    is_cwa_presolution,
    is_cwa_solution,
    parse_instance,
    parse_query,
    solve,
)


def main() -> None:
    setting = DataExchangeSetting.from_strings(
        Schema.of(M=2, N=2),
        Schema.of(E=2, F=2, G=2),
        [
            "M(x1, x2) -> E(x1, x2)",
            "N(x, y) -> exists z1, z2 . E(x, z1) & F(x, z2)",
        ],
        [
            "F(y, x) -> exists z . G(x, z)",
            "F(x, y) & F(x, z) -> y = z",
        ],
    )
    source = parse_instance("M('a','b'), N('a','b'), N('a','c')")

    print("Setting:", setting)
    print("  weakly acyclic:", setting.is_weakly_acyclic)
    print("  richly acyclic:", setting.is_richly_acyclic)
    print("Source instance S*:")
    print(source.pretty())

    result = solve(setting, source)
    print("\nCanonical universal solution (standard chase):")
    print(result.canonical_solution.pretty())
    print("\nCore = minimal CWA-solution (Theorem 5.1):")
    print(result.core_solution.pretty())

    # The paper's three candidate solutions.
    t1 = parse_instance(
        "E('a','b'), E('a',#1), E('c',#2), F('a','d'), G('d',#3)"
    )
    t2 = parse_instance("E('a','b'), E('a',#1), E('a',#2), F('a',#3), G(#3,#4)")
    t3 = parse_instance("E('a','b'), F('a',#1), G(#1,#2)")

    print("\nClassification of the paper's candidates:")
    for name, target in (("T1", t1), ("T2", t2), ("T3", t3)):
        print(
            f"  {name}: solution={setting.is_solution(source, target)}, "
            f"universal={setting.is_universal_solution(source, target)}, "
            f"CWA-presolution={is_cwa_presolution(setting, source, target)}, "
            f"CWA-solution={is_cwa_solution(setting, source, target)}"
        )

    # Query answering under the CWA certain-answers semantics.
    queries = [
        "Q(x, y) :- E(x, y)",
        "Q() :- F('a', u), G(u, w)",
        "Q(x) :- F(x, y)",
    ]
    print("\nCertain answers (certain□, via the core -- Theorem 7.1):")
    for text in queries:
        answers = certain_answers(setting, source, parse_query(text))
        rendered = sorted(tuple(str(v) for v in t) for t in answers)
        print(f"  {text:<30} -> {rendered}")


if __name__ == "__main__":
    main()
