"""Undecidability up close: D_halt simulates Turing machines (Thm 6.2).

Run with:  python examples/turing_halting.py

Theorem 6.2 proves Existence-of-CWA-Solutions undecidable by exhibiting a
fixed setting D_halt such that a machine M halts on the empty input iff a
CWA-solution for the encoding S_M exists.  This script makes the
reduction tangible:

1. it runs a halting and a looping machine directly on the TM substrate;
2. it chases their encodings under D_halt and shows the chase replays the
   machines' configurations step by step;
3. for the halting machine it builds the finite witness instance (the run
   grid with the tape closed off by a NEXTPOS self-loop) and certifies it
   as a solution and a CWA-presolution;
4. for the looping machine it shows the NEXT chain grows with every chase
   budget -- no finite CWA-solution can exist.
"""

from repro.cwa import is_cwa_presolution
from repro.reductions.turing import (
    chase_configurations,
    d_halt_setting,
    encode_machine,
    halting_machine,
    halting_witness,
    zigzag_machine,
)


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def main() -> None:
    setting = d_halt_setting()
    print("D_halt target schema:", sorted(setting.target_schema.names))
    print("weakly acyclic:", setting.is_weakly_acyclic, "(undecidability lives outside that class)")

    banner("1. Direct simulation")
    halter = halting_machine(2)
    looper = zigzag_machine()
    halter_run = halter.run_on_empty(100)
    print(f"halting machine: halted={halter_run.halted} after {halter_run.steps} steps")
    for configuration in halter_run.configurations:
        print("   ", configuration)
    looper_run = looper.run_on_empty(6)
    print(f"zigzag machine: halted={looper_run.halted} (still running after {looper_run.steps} steps)")

    banner("2. The chase replays the run")
    for name, machine, expected_run in (
        ("halting", halter, halter_run),
        ("zigzag", looper, looper_run),
    ):
        readout = chase_configurations(machine, chase_steps=450)
        expected = [(c.state, c.head) for c in expected_run.configurations]
        overlap = min(len(readout), len(expected))
        print(f"{name}: chase readout {readout[:overlap]}")
        print(f"{'':{len(name)}}  simulator     {expected[:overlap]}")
        print(f"{'':{len(name)}}  match: {readout[:overlap] == expected[:overlap]}")

    banner("3. Finite CWA-witness for the halting machine")
    source = encode_machine(halter)
    witness = halting_witness(halter)
    print(f"|S_M| = {len(source)} atoms, |witness| = {len(witness)} atoms, "
          f"{len(witness.nulls())} nulls")
    print("is a solution:      ", setting.is_solution(source, witness))
    small = halting_machine(1)
    small_witness = halting_witness(small)
    print(
        "is a CWA-presolution (k=1 machine, recognizer):",
        is_cwa_presolution(d_halt_setting(), encode_machine(small), small_witness),
    )

    banner("4. No finite witness for the looping machine")
    for budget in (220, 500, 900):
        chain = chase_configurations(looper, chase_steps=budget)
        print(f"chase budget {budget:>4}: NEXT chain visits {len(chain)} configurations")
    print("The chain keeps growing: the closed-world run can never be")
    print("completed, so no CWA-solution exists -- and no algorithm can")
    print("tell these two cases apart in general (Theorem 6.2).")


if __name__ == "__main__":
    main()
