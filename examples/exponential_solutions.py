"""Example 5.3: exponentially many incomparable CWA-solutions.

Run with:  python examples/exponential_solutions.py

The setting

    d1 = P(x) → ∃z1,z2,z3,z4 (E(x,z1,z3) ∧ E(x,z2,z4))
    d2 = E(x,x1,y) ∧ E(x,x2,y) → F(x,x1,x2)

has, for S_n = {P(1), ..., P(n)}, at least 2^n CWA-solutions none of
which is a homomorphic image of another -- so no *maximal* CWA-solution
exists (contrast with Theorem 5.1's unique minimal one, the core, and
with Proposition 5.4's restricted classes where CanSol is maximal).

This script materializes the full solution space for small n, verifies
the paper's pairwise-incomparability claim, and shows the exponential
growth (the space here is exactly 4^n: each P-fact independently picks
one of four null-equality patterns).
"""

from repro.core import isomorphic
from repro.cwa import (
    core_solution,
    enumerate_cwa_solutions,
    is_homomorphic_image_of,
    is_minimal_cwa_solution,
)
from repro.generators.settings_library import (
    example_5_3_named_solutions,
    example_5_3_setting,
    example_5_3_source,
)


def main() -> None:
    setting = example_5_3_setting()
    print("Setting of Example 5.3:")
    for dependency in setting.all_dependencies:
        print("  ", dependency)

    print("\nSolution-space growth (up to renaming of nulls):")
    for n in (1, 2):
        source = example_5_3_source(n)
        solutions = enumerate_cwa_solutions(setting, source)
        print(f"  n={n}: |CWA-solutions| = {len(solutions)}  (= 4^{n})")

    source = example_5_3_source(1)
    solutions = enumerate_cwa_solutions(setting, source)
    t, t_prime = example_5_3_named_solutions()
    print("\nThe paper's T and T' for S = {P(1)}:")
    print("T  =", t)
    print("T' =", t_prime)
    print(
        "present in the space:",
        any(isomorphic(t, s) for s in solutions),
        any(isomorphic(t_prime, s) for s in solutions),
    )

    print("\nIncomparability (no solution is the hom-image of another):")
    for index, left in enumerate(solutions):
        images = [
            j
            for j, right in enumerate(solutions)
            if j != index and is_homomorphic_image_of(left, right)
        ]
        print(f"  solution {index} (|T|={len(left)}): image of {images or 'none'}")

    minimal = core_solution(setting, source)
    print("\nThe core is the unique minimal CWA-solution (Theorem 5.1):")
    print("  core =", minimal)
    print(
        "  minimal:",
        is_minimal_cwa_solution(setting, source, minimal, solutions),
    )
    print(
        "  a maximal CWA-solution exists:",
        any(
            all(
                is_homomorphic_image_of(other, candidate)
                for other in solutions
            )
            for candidate in solutions
        ),
    )

    from repro.cwa import SolutionSpace

    print("\nThe whole space, as a homomorphism-ordered poset:")
    space = SolutionSpace(setting, source, solutions)
    print(space.describe())


if __name__ == "__main__":
    main()
