"""A realistic data exchange scenario: migrating a university database.

Run with:  python examples/university_exchange.py

Source schema (legacy system):
    Enrolled(student, course)
    Teaches(lecturer, course)
    OfficeOf(lecturer, office)

Target schema (new integrated system):
    Takes(student, course)
    Course(course, lecturer)        -- every course must get a lecturer
    Contact(lecturer, office)       -- office may be unknown (null)
    Advised(student, lecturer)      -- derived: students are advised by
                                       the lecturers of their courses

Target dependencies:
    Takes(s, c)                  → ∃l Course(c, l)          (target tgd)
    Takes(s, c) ∧ Course(c, l)   → Advised(s, l)            (full tgd)
    Course(c, l1) ∧ Course(c, l2) → l1 = l2                 (key egd)

This is a weakly acyclic setting with tgds *and* egds on the target --
exactly the class the paper extends CWA-solutions to.  The script
exchanges the data, inspects the core, and contrasts the four CWA
query-answering semantics on a query about unknown values.
"""

from repro import (
    DataExchangeSetting,
    Schema,
    all_four_semantics,
    parse_instance,
    parse_query,
    solve,
    ucq_certain_answers,
)


def build_setting() -> DataExchangeSetting:
    sigma = Schema.of(Enrolled=2, Teaches=2, OfficeOf=2)
    tau = Schema.of(Takes=2, Course=2, Contact=2, Advised=2)
    return DataExchangeSetting.from_strings(
        sigma,
        tau,
        [
            "Enrolled(s, c) -> Takes(s, c)",
            "Teaches(l, c) -> Course(c, l)",
            "OfficeOf(l, o) -> Contact(l, o)",
            # Every lecturer is reachable somewhere, office possibly unknown.
            "Teaches(l, c) -> exists o . Contact(l, o)",
        ],
        [
            "Takes(s, c) -> exists l . Course(c, l)",
            "Takes(s, c) & Course(c, l) -> Advised(s, l)",
            "Course(c, l1) & Course(c, l2) -> l1 = l2",
        ],
    )


def main() -> None:
    setting = build_setting()
    print("Weakly acyclic:", setting.is_weakly_acyclic)

    source = parse_instance(
        """
        Enrolled('ann', 'db'), Enrolled('ann', 'logic'),
        Enrolled('bob', 'db'), Enrolled('eve', 'ml'),
        Teaches('kolaitis', 'db'), Teaches('libkin', 'logic'),
        OfficeOf('kolaitis', 'room5')
        """
    )
    print("\nSource:")
    print(source.pretty())

    result = solve(setting, source)
    print("\nCore (minimal CWA-solution):")
    print(result.core_solution.pretty())
    print(
        f"\n(The 'ml' course got an invented lecturer null, and libkin an "
        f"unknown office: {sorted(str(n) for n in result.core_solution.nulls())})"
    )

    # PTIME certain answers for UCQs (Theorem 7.6).
    print("\nCertain answers (UCQ fast path, Lemma 7.7):")
    for text in (
        "Q(s, l) :- Advised(s, l)",
        "Q(c) :- Course(c, l)",
        "Q(l, o) :- Contact(l, o)",
    ):
        answers = ucq_certain_answers(setting, source, parse_query(text))
        rendered = sorted(tuple(str(v) for v in t) for t in answers)
        print(f"  {text:<28} -> {rendered}")

    # The four semantics on a query about an unknown value: who might
    # share an office with kolaitis?
    query = parse_query("Q(l) :- Contact(l, o), Contact('kolaitis', o)")
    results = all_four_semantics(setting, source, query)
    print("\nWho (certainly / possibly) shares an office with kolaitis?")
    for name in ("certain", "potential_certain", "persistent_maybe", "maybe"):
        rendered = sorted(str(t[0]) for t in results[name])
        print(f"  {name:<18} -> {rendered}")
    print(
        "\n(kolaitis certainly does; libkin's unknown office *might* be "
        "room5, so libkin appears under the maybe semantics only.)"
    )


if __name__ == "__main__":
    main()
