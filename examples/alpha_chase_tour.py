"""A guided tour of the α-chase (Definition 4.1 and Example 4.4).

Run with:  python examples/alpha_chase_tour.py

The α-chase is the paper's controlled chase: a mapping α fixes, for every
justification (d, ū, v̄, z), the value the existential variable z will
take.  Example 4.4 exhibits three mappings with three different fates:

    α1 -- a successful chase whose result is the CWA-solution T2;
    α2 -- a failing chase (an egd equates the constants c and d);
    α3 -- a chase that can only loop forever.

This script replays all three with the engine and once more manually,
step by step, through AlphaChaseSession.
"""

from repro.chase import AlphaChaseSession, ExplicitAlpha, alpha_chase
from repro.core import Const, Null, NullFactory
from repro.generators.settings_library import (
    example_2_1_setting,
    example_2_1_source,
)


def values(*items):
    return tuple(
        Null(item) if isinstance(item, int) else Const(item) for item in items
    )


def main() -> None:
    setting = example_2_1_setting()
    source = example_2_1_source()
    d1, d2 = setting.st_dependencies
    d3, d4 = setting.target_dependencies
    dependencies = list(setting.all_dependencies)

    print("Σ:")
    for dependency in dependencies:
        print("  ", dependency)
    print("\nS* =", source)

    tables = {
        "α1": {
            (d2, values("a"), values("b")): values(1, 3),
            (d2, values("a"), values("c")): values(2, 3),
            (d3, values(3), values("a")): values(4),
        },
        "α2": {
            (d2, values("a"), values("b")): values("b", "c"),
            (d2, values("a"), values("c")): values("b", "d"),
        },
        "α3": {
            (d2, values("a"), values("b")): values("b", 3),
            (d2, values("a"), values("c")): values("b", 4),
            (d3, values(3), values("a")): values(1),
            (d3, values(4), values("a")): values(2),
        },
    }

    print("\nEngine runs (Example 4.4):")
    for name, table in tables.items():
        alpha = ExplicitAlpha(dict(table), fallback=NullFactory(100))
        outcome = alpha_chase(source, dependencies, alpha, max_steps=5_000)
        print(f"  {name}: {outcome.status.value:<9} ({outcome.steps} steps)")
        if outcome.successful:
            print("      result:", outcome.instance.reduct(setting.target_schema))
        elif outcome.reason:
            print("      reason:", outcome.reason)

    print("\nManual replay of the successful α1-chase C:")
    alpha = ExplicitAlpha(dict(tables["α1"]), fallback=NullFactory(100))
    session = AlphaChaseSession(source, alpha)
    script = [
        ("d1 with (a,b) and ()", d1, values("a", "b"), ()),
        ("d2 with (a) and (b)", d2, values("a"), values("b")),
        ("d2 with (a) and (c)", d2, values("a"), values("c")),
        ("d3 with (⊥3) and (a)", d3, values(3), values("a")),
    ]
    for label, dependency, u, v in script:
        session.apply_tgd(dependency, u, v)
        print(f"  α-apply {label:<22} -> |I| = {len(session.instance)}")
    print("  successful:", session.is_successful_result(dependencies))
    print("  I_4 =", session.instance.reduct(setting.target_schema))


if __name__ == "__main__":
    main()
