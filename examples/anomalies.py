"""Section 3: why the classical certain-answers semantics misbehaves.

Run with:  python examples/anomalies.py

A *copying* setting just renames every source relation R into R'.  One
would expect queries on the target to behave exactly as on the source --
but the classical (open-world) certain answers semantics disagrees: on
the paper's two-cycle instance it silently drops half the answers.  The
CWA semantics introduced by Libkin and extended by this paper returns
the intuitive result.
"""

from repro.answering import all_four_semantics
from repro.core import Atom, Schema
from repro.exchange import copy_instance, copying_setting
from repro.generators import section_3_source
from repro.logic import parse_query

SIGMA = Schema.of(E=2, P=1)


def main() -> None:
    setting = copying_setting(SIGMA)
    source = section_3_source(cycle_length=9)
    copied = copy_instance(source, SIGMA)

    print("Source: two disjoint 9-cycles a0..a8 and b0..b8; P = {a4}.")
    print(f"({len(source)} source atoms)")

    # The paper's query: Q(x) = P'(x) ∨ ∃y∃z (P'(y) ∧ E'(y,z) ∧ ¬P'(z)).
    query = parse_query(
        "Q(x) := P_t(x) | exists y, z . (P_t(y) & E_t(y, z) & ~P_t(z))"
    )
    print("\nQuery Q(x) = P'(x) ∨ ∃y,z (P'(y) ∧ E'(y,z) ∧ ¬P'(z))")

    naive = query.evaluate(copied)
    print(f"\nOn the intuitive solution S' (the plain copy): {len(naive)} answers")
    print("  ", sorted(str(t[0]) for t in naive))

    # The classical certain answers: intersect with the augmented
    # solution that additionally labels every a_i with P'.
    from repro.core import Const

    augmented = copied.copy()
    for index in range(9):
        augmented.add(Atom(SIGMA["P"].primed(), (Const(f"a{index}"),)))
    assert setting.is_solution(source, augmented)

    classical = query.evaluate(copied) & query.evaluate(augmented)
    print(
        f"\nClassical certain answers (witnessed by the augmented solution "
        f"that also labels a0..a8): only {len(classical)} answers"
    )
    print("  ", sorted(str(t[0]) for t in classical))
    print("  -> the entire b-cycle vanished, although the setting merely copies!")

    results = all_four_semantics(setting, source, query)
    print("\nThe CWA semantics of the paper (all four coincide here):")
    for name, answers in results.items():
        print(f"  {name:<18}: {len(answers)} answers")
    assert all(answers == naive for answers in results.values())
    print("  -> exactly Q(S'), as it intuitively should be (Section 7.1).")


if __name__ == "__main__":
    main()
