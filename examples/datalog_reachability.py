"""Datalog certain answers over exchanged data (Theorem 7.6, full reach).

Run with:  python examples/datalog_reachability.py

Theorem 7.6's query class -- potentially infinite unions of conjunctive
queries -- includes recursive datalog.  This script exchanges a road
network into a target schema that invents unknown links (nulls), then
answers a *recursive* reachability query under the CWA certain-answer
semantics: chase, core, datalog fixpoint, drop null tuples.
"""

from repro.answering import datalog_certain_answers
from repro.core import Schema
from repro.exchange import DataExchangeSetting, solve
from repro.logic import parse_instance, parse_program


def main() -> None:
    setting = DataExchangeSetting.from_strings(
        Schema.of(Road=2, Ferry=2, Port=1),
        Schema.of(Link=2, Gateway=1),
        [
            "Road(x, y) -> Link(x, y)",
            "Ferry(x, y) -> Link(x, y) & Link(y, x)",
            # Every port connects onward to some (unknown) place.
            "Port(x) -> exists y . Link(x, y) & Gateway(x)",
        ],
        [],
    )
    source = parse_instance(
        """
        Road('berlin','leipzig'), Road('leipzig','munich'),
        Ferry('rostock','malmo'),
        Road('berlin','rostock'),
        Port('rostock'), Port('malmo')
        """
    )
    result = solve(setting, source)
    print("Core of the exchanged network:")
    print(result.core_solution.pretty())

    program = parse_program(
        """
        % places reachable from berlin
        reach(y) :- Link('berlin', y).
        reach(z) :- reach(y), Link(y, z).
        """,
        goal="reach",
    )
    print("\nRecursive query:")
    print(program)

    answers = datalog_certain_answers(setting, source, program)
    print("\nCertainly reachable from berlin:")
    for (value,) in sorted(answers, key=str):
        print("  ", value)
    print(
        "\n(The ports' unknown onward links are nulls: they flow through"
        "\nthe fixpoint but are dropped from the certain answers, exactly"
        "\nas Lemma 7.7 prescribes.)"
    )


if __name__ == "__main__":
    main()
